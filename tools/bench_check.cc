// CI perf gate: compares a fresh BENCH_sweep_*.json (bullet-bench-v2 or -v3)
// against a committed baseline and exits nonzero when any metric median leaves
// its tolerance band. A bullet-floors-v1 baseline switches to the one-sided
// throughput-floor mode (current events/sec and sim-bytes/sec must meet the
// committed floors; tolerances do not apply). See README "Sweeps & perf
// gating" and docs/PERFORMANCE.md.
//
//   bench_check --baseline bench/baselines/ci_baseline.json --current BENCH_sweep_ci.json
//               [--rel-tol 0.25] [--abs-tol 1e-9] [--metric-tol NAME=REL]...
//   bench_check --baseline bench/baselines/ci_floors.json --current BENCH_sweep_ci_floors.json
//
// Exit codes: 0 all within tolerance, 1 regression, 2 usage/input error.

#include <iostream>
#include <string>

#include "src/harness/bench_check.h"
#include "src/harness/flag_parse.h"

namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: bench_check --baseline PATH --current PATH\n"
        "                   [--rel-tol FRACTION]   default relative band (0.25)\n"
        "                   [--abs-tol VALUE]      absolute floor per band (1e-9)\n"
        "                   [--metric-tol NAME=F]  per-metric relative band, repeatable\n"
        "floors mode: a bullet-floors-v1 baseline gates one-sided\n"
        "(current >= floor); the tolerance flags are ignored\n"
        "exit: 0 pass, 1 regression, 2 bad input\n";
}

// Strict parse (rejects nan/inf — a NaN band would compare false against every
// diff and silently wave regressions through) plus the non-negativity tolerance
// bands require.
bool ParseFraction(const std::string& text, double* out) {
  double v = 0.0;
  if (!bullet::ParseStrictDouble(text, &v) || v < 0.0) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  bullet::BenchCheckOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg == "--baseline" && next(&baseline_path)) {
    } else if (arg == "--current" && next(&current_path)) {
    } else if (arg == "--rel-tol" && next(&value)) {
      if (!ParseFraction(value, &opts.rel_tol)) {
        std::cerr << "bench_check: bad --rel-tol '" << value << "'\n";
        return bullet::kBenchCheckBadInput;
      }
    } else if (arg == "--abs-tol" && next(&value)) {
      if (!ParseFraction(value, &opts.abs_tol)) {
        std::cerr << "bench_check: bad --abs-tol '" << value << "'\n";
        return bullet::kBenchCheckBadInput;
      }
    } else if (arg == "--metric-tol" && next(&value)) {
      const size_t eq = value.rfind('=');
      double tol = 0.0;
      if (eq == std::string::npos || eq == 0 || !ParseFraction(value.substr(eq + 1), &tol)) {
        std::cerr << "bench_check: bad --metric-tol '" << value << "' (want NAME=FRACTION)\n";
        return bullet::kBenchCheckBadInput;
      }
      opts.metric_rel_tol[value.substr(0, eq)] = tol;
    } else {
      std::cerr << "bench_check: unknown or incomplete argument '" << arg << "'\n";
      PrintUsage(std::cerr);
      return bullet::kBenchCheckBadInput;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "bench_check: --baseline and --current are both required\n";
    PrintUsage(std::cerr);
    return bullet::kBenchCheckBadInput;
  }

  return bullet::CompareSweepFiles(baseline_path, current_path, opts, std::cout, std::cerr);
}
