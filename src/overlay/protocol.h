// Base class for per-node protocol instances (the role MACEDON plays in the paper:
// the framework supplies transport, timers and randomness; the protocol supplies the
// overlay algorithm).

#ifndef SRC_OVERLAY_PROTOCOL_H_
#define SRC_OVERLAY_PROTOCOL_H_

#include <utility>

#include "src/common/rng.h"
#include "src/sim/metrics.h"
#include "src/sim/network.h"

namespace bullet {

class Protocol : public NetHandler {
 public:
  struct Context {
    NodeId self = -1;
    Network* net = nullptr;
    RunMetrics* metrics = nullptr;
    uint64_t seed = 0;
  };

  explicit Protocol(const Context& ctx)
      : self_(ctx.self), net_(ctx.net), metrics_(ctx.metrics), rng_(ctx.seed) {}
  ~Protocol() override = default;

  // Called once at simulation start, after all handlers are registered.
  virtual void Start() = 0;

 protected:
  NodeId self() const { return self_; }
  Network& net() { return *net_; }
  // The queue this node's timers belong to: its partition's queue under the
  // parallel engine, the global queue otherwise. Protocol code must schedule
  // its own timers here (never on net().queue()) so they execute inside the
  // node's superstep window.
  EventQueue& queue() { return net_->node_queue(self_); }
  SimTime now() const { return net_->now(); }
  RunMetrics& metrics() { return *metrics_; }
  Rng& rng() { return rng_; }

 private:
  NodeId self_;
  Network* net_;
  RunMetrics* metrics_;
  Rng rng_;
};

}  // namespace bullet

#endif  // SRC_OVERLAY_PROTOCOL_H_
