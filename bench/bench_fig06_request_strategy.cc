// Fig. 6: impact of the request strategy (first-encountered vs random vs
// rarest-random; plain rarest included as the fourth design point of Section 3.3.2)
// on Bullet' download times under random network losses.
//
// Expected shape (paper): first-encountered worst; rarest-random best for ~70% of
// receivers; plain random catches up in the tail because rarest decisions go stale
// on lossy links.

#include "bench/bench_util.h"

namespace bullet {
namespace {

const char* StrategyName(RequestStrategy s) {
  switch (s) {
    case RequestStrategy::kFirstEncountered:
      return "first-encountered";
    case RequestStrategy::kRandom:
      return "random";
    case RequestStrategy::kRarest:
      return "rarest";
    case RequestStrategy::kRarestRandom:
      return "rarest-random";
  }
  return "?";
}

void BM_Strategy(benchmark::State& state) {
  const RequestStrategy strategy = static_cast<RequestStrategy>(state.range(0));
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = bench::ScaledFileMb(100.0);
  cfg.seed = 601;
  BulletPrimeConfig bp;
  bp.request_strategy = strategy;
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(System::kBulletPrime, cfg, bp);
    bench::ReportCompletion(state, std::string("BulletPrime ") + StrategyName(strategy), r);
  }
}
BENCHMARK(BM_Strategy)
    ->Arg(static_cast<int>(RequestStrategy::kRarestRandom))
    ->Arg(static_cast<int>(RequestStrategy::kRandom))
    ->Arg(static_cast<int>(RequestStrategy::kRarest))
    ->Arg(static_cast<int>(RequestStrategy::kFirstEncountered))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Fig. 6 — request strategy under random losses")
