// Generator coverage: statistical sanity for the stochastic generators (Pareto
// tail index, diurnal arrival rate), seed determinism for every generator, and
// the constructor validation death tests.

#include "src/harness/workload_gen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/harness/churn.h"
#include "src/sim/topology.h"

namespace bullet {
namespace {

// E[ln(L/xm)] = 1/alpha for Pareto(alpha, xm): the log-mean is a consistent
// estimator of the tail index, far more stable than moment fits (the mean
// itself diverges for alpha <= 1).
TEST(ParetoLifetimeTest, TailIndexMatchesAlpha) {
  for (const double alpha : {0.9, 1.5, 3.0}) {
    const SimTime xm = SecToSim(10.0);
    const ParetoLifetime model(alpha, xm);
    Rng rng(42);
    const int n = 100000;
    double log_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      const SimTime draw = model.Draw(0, rng);
      ASSERT_GE(draw, xm);
      log_sum += std::log(static_cast<double>(draw) / static_cast<double>(xm));
    }
    const double alpha_hat = n / log_sum;
    // 100k samples put the estimator within a few percent of the truth.
    EXPECT_NEAR(alpha_hat, alpha, 0.05 * alpha) << "alpha " << alpha;
  }
}

TEST(ParetoLifetimeTest, DrawsArePositiveAndSeedDeterministic) {
  const ParetoLifetime model(1.2, SecToSim(5.0));
  Rng a(7);
  Rng b(7);
  Rng c(8);
  bool any_differs_across_seeds = false;
  for (int i = 0; i < 100; ++i) {
    const SimTime first = model.Draw(i, a);
    EXPECT_GT(first, 0);
    EXPECT_EQ(first, model.Draw(i, b));
    any_differs_across_seeds |= first != model.Draw(i, c);
  }
  EXPECT_TRUE(any_differs_across_seeds);
}

// Over whole periods the sinusoid integrates to zero, so the expected time to
// collect N arrivals is N / base_rate; check the empirical horizon against it.
TEST(DiurnalArrivalsTest, ArrivalHorizonMatchesBaseRate) {
  const double base_rate = 2.0;  // per second
  const DiurnalArrivals arrivals(base_rate, 0.8, SecToSim(10.0));
  Rng rng(99);
  const size_t receivers = 4000;  // 2000 expected seconds = 200 whole periods
  const std::vector<SimTime> offsets = arrivals.Offsets(receivers, rng);
  ASSERT_EQ(offsets.size(), receivers);
  SimTime prev = 0;
  for (const SimTime t : offsets) {
    EXPECT_GE(t, prev);  // a counting process: offsets come out sorted
    prev = t;
  }
  const double horizon_sec = SimToSec(offsets.back());
  const double expected_sec = static_cast<double>(receivers) / base_rate;
  EXPECT_NEAR(horizon_sec, expected_sec, 0.10 * expected_sec);
}

TEST(DiurnalArrivalsTest, RateModulationFollowsTheCurve) {
  // With phase 0 the first half-period runs above base rate and the second half
  // below, so strictly more arrivals land in [0, period/2) than [period/2, period).
  const double base_rate = 5.0;
  const SimTime period = SecToSim(100.0);
  const DiurnalArrivals arrivals(base_rate, 1.0, period);
  Rng rng(5);
  const std::vector<SimTime> offsets = arrivals.Offsets(400, rng);
  int first_half = 0;
  int second_half = 0;
  for (const SimTime t : offsets) {
    if (t >= period) {
      break;  // only the first full period gives a clean half/half comparison
    }
    (t < period / 2 ? first_half : second_half)++;
  }
  EXPECT_GT(first_half, 2 * second_half);
}

TEST(FixedOffsetArrivalsTest, EveryReceiverGetsTheOffset) {
  const FixedOffsetArrivals arrivals(SecToSim(3.0));
  Rng rng(1);
  const std::vector<SimTime> offsets = arrivals.Offsets(5, rng);
  ASSERT_EQ(offsets.size(), 5u);
  for (const SimTime t : offsets) {
    EXPECT_EQ(t, SecToSim(3.0));
  }
}

TEST(FlashCrowdArrivalsTest, LateFractionIsHonoredAndDeterministic) {
  const FlashCrowdArrivals arrivals(0.4, SecToSim(60.0));
  Rng a(11);
  Rng b(11);
  const std::vector<SimTime> first = arrivals.Offsets(50, a);
  const std::vector<SimTime> second = arrivals.Offsets(50, b);
  EXPECT_EQ(first, second);
  int late = 0;
  for (const SimTime t : first) {
    EXPECT_TRUE(t == 0 || t == SecToSim(60.0));
    late += t != 0;
  }
  EXPECT_EQ(late, 20);  // 0.4 * 50
}

TEST(LifetimeModelTest, InfiniteAndSeederPoliciesNeverExpire) {
  Rng rng(3);
  const InfiniteLifetime infinite;
  EXPECT_LT(infinite.Draw(0, rng), 0);
  EXPECT_FALSE(infinite.departs_after_completion());

  const SeederDepartureLifetime seeder(SecToSim(5.0));
  EXPECT_LT(seeder.Draw(0, rng), 0);
  EXPECT_TRUE(seeder.departs_after_completion());
  EXPECT_EQ(seeder.post_completion_linger(), SecToSim(5.0));
}

TEST(AccessLinkDistributionTest, DslCohortNeverThrottlesTheSourceAndIsDeterministic) {
  const DslAccessLinks dsl(0.5, 3e6, 0.5e6);
  const auto build = [] {
    Rng rng(17);
    MeshTopology::MeshParams mesh;
    mesh.num_nodes = 20;
    return MeshTopology::FullMesh(mesh, rng);
  };
  MeshTopology first = build();
  MeshTopology second = build();
  Rng a(23);
  Rng b(23);
  dsl.Apply(first, a);
  dsl.Apply(second, b);
  EXPECT_EQ(first.uplink(0).bandwidth_bps, second.uplink(0).bandwidth_bps);
  int throttled = 0;
  for (NodeId n = 0; n < first.num_nodes(); ++n) {
    EXPECT_EQ(first.uplink(n).bandwidth_bps, second.uplink(n).bandwidth_bps);
    EXPECT_EQ(first.downlink(n).bandwidth_bps, second.downlink(n).bandwidth_bps);
    throttled += first.uplink(n).bandwidth_bps == 0.5e6;
  }
  EXPECT_EQ(throttled, 10);
  // Node 0 hosts the source in every scenario; a throttled source would turn
  // each run into a source-uplink benchmark.
  EXPECT_NE(first.uplink(0).bandwidth_bps, 0.5e6);
}

TEST(AccessLinkDistributionTest, UniformRewritesEveryNode) {
  Rng topo_rng(29);
  MeshTopology::MeshParams mesh;
  mesh.num_nodes = 8;
  MeshTopology topo = MeshTopology::FullMesh(mesh, topo_rng);
  Rng rng(1);
  UniformAccessLinks(2.5e6).Apply(topo, rng);
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_EQ(topo.uplink(n).bandwidth_bps, 2.5e6);
    EXPECT_EQ(topo.downlink(n).bandwidth_bps, 2.5e6);
  }
}

using WorkloadGenDeathTest = ::testing::Test;

TEST(WorkloadGenDeathTest, InvalidGeneratorSpecsAbort) {
  EXPECT_DEATH(FixedOffsetArrivals(-1), "non-negative");
  EXPECT_DEATH(FlashCrowdArrivals(1.5, 0), "late_fraction");
  EXPECT_DEATH(FlashCrowdArrivals(0.5, -1), "non-negative");
  EXPECT_DEATH(DiurnalArrivals(0.0, 0.5, SecToSim(10.0)), "base rate");
  EXPECT_DEATH(DiurnalArrivals(1.0, 1.5, SecToSim(10.0)), "amplitude");
  EXPECT_DEATH(DiurnalArrivals(1.0, 0.5, 0), "period");
  EXPECT_DEATH(ParetoLifetime(0.0, SecToSim(1.0)), "alpha");
  EXPECT_DEATH(ParetoLifetime(1.5, 0), "minimum lifetime");
  EXPECT_DEATH(ParetoLifetime(1.5, SecToSim(1.0), true, -1), "linger");
  EXPECT_DEATH(SeederDepartureLifetime(-1), "linger");
  EXPECT_DEATH(UniformAccessLinks(0.0), "bandwidth");
  EXPECT_DEATH(DslAccessLinks(-0.1, 3e6, 1e6), "fraction");
  EXPECT_DEATH(DslAccessLinks(0.5, 1e6, 3e6), "down_bps >= up_bps");
}

TEST(ChurnModelTest, NamesIdentifyTheModels) {
  EXPECT_EQ(LeafFailureChurn(3).name(), "leaf");
  EXPECT_EQ(CorrelatedFailureChurn(CorrelatedFailureChurn::Scope::kStubDomain, SecToSim(5.0)).name(),
            "stub");
  EXPECT_EQ(
      CorrelatedFailureChurn(CorrelatedFailureChurn::Scope::kGatewayRouter, SecToSim(5.0)).name(),
      "gateway");
}

}  // namespace
}  // namespace bullet
