#include "src/shotgun/shotgun.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace bullet {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

FileTree MakeTree(uint64_t seed) {
  FileTree tree;
  tree["bin/app"] = RandomBytes(50 * 1024, seed);
  tree["lib/core.so"] = RandomBytes(120 * 1024, seed + 1);
  tree["etc/config"] = RandomBytes(2 * 1024, seed + 2);
  tree["data/table.bin"] = RandomBytes(30 * 1024, seed + 3);
  return tree;
}

TEST(Shotgun, IdenticalTreesProduceEmptyBundle) {
  const FileTree tree = MakeTree(1);
  const SyncBundle bundle = MakeBundle(tree, tree, 1024, 1, 2);
  EXPECT_TRUE(bundle.entries.empty());
  EXPECT_LT(bundle.WireBytes(), 64);
}

TEST(Shotgun, PatchAddDeleteOps) {
  FileTree old_tree = MakeTree(2);
  FileTree new_tree = old_tree;
  // Patch: modify a slice of an existing file.
  for (size_t i = 100; i < 300; ++i) {
    new_tree["bin/app"][i] ^= 0xff;
  }
  // Add and delete.
  new_tree["docs/README"] = RandomBytes(5 * 1024, 77);
  new_tree.erase("etc/config");

  const SyncBundle bundle = MakeBundle(old_tree, new_tree, 1024, 3, 4);
  ASSERT_EQ(bundle.entries.size(), 3u);

  int patches = 0;
  int adds = 0;
  int deletes = 0;
  for (const auto& e : bundle.entries) {
    switch (e.op) {
      case BundleEntry::Op::kPatch:
        ++patches;
        EXPECT_EQ(e.path, "bin/app");
        break;
      case BundleEntry::Op::kAdd:
        ++adds;
        EXPECT_EQ(e.path, "docs/README");
        break;
      case BundleEntry::Op::kDelete:
        ++deletes;
        EXPECT_EQ(e.path, "etc/config");
        break;
    }
  }
  EXPECT_EQ(patches, 1);
  EXPECT_EQ(adds, 1);
  EXPECT_EQ(deletes, 1);

  FileTree applied = old_tree;
  ASSERT_TRUE(ApplyBundle(applied, bundle));
  EXPECT_EQ(applied, new_tree);
}

TEST(Shotgun, DeltaBundleMuchSmallerThanImage) {
  FileTree old_tree = MakeTree(3);
  FileTree new_tree = old_tree;
  new_tree["lib/core.so"][1000] ^= 1;  // single-byte change in a 120 KB file
  const SyncBundle bundle = MakeBundle(old_tree, new_tree, 1024, 1, 2);
  int64_t image_bytes = 0;
  for (const auto& [path, bytes] : new_tree) {
    image_bytes += static_cast<int64_t>(bytes.size());
  }
  EXPECT_LT(bundle.WireBytes(), image_bytes / 20);
}

TEST(Shotgun, ApplyFailsCleanlyOnWrongBase) {
  FileTree old_tree = MakeTree(4);
  FileTree new_tree = old_tree;
  for (size_t i = 0; i < 512; ++i) {
    new_tree["bin/app"][i] ^= 0x5a;
  }
  const SyncBundle bundle = MakeBundle(old_tree, new_tree, 1024, 1, 2);

  // A client whose base tree lost the file cannot apply the patch...
  FileTree broken = old_tree;
  broken.erase("bin/app");
  FileTree snapshot = broken;
  EXPECT_FALSE(ApplyBundle(broken, bundle));
  EXPECT_EQ(broken, snapshot);  // untouched on failure
}

TEST(Shotgun, SerializeParseRoundtrip) {
  FileTree old_tree = MakeTree(5);
  FileTree new_tree = old_tree;
  for (size_t i = 5000; i < 9000; ++i) {
    new_tree["data/table.bin"][i % new_tree["data/table.bin"].size()] ^= 0x33;
  }
  new_tree["new/file"] = RandomBytes(3000, 88);
  new_tree.erase("bin/app");

  const SyncBundle bundle = MakeBundle(old_tree, new_tree, 512, 9, 10);
  const Bytes wire = SerializeBundle(bundle);
  const auto parsed = ParseBundle(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->from_version, 9u);
  EXPECT_EQ(parsed->to_version, 10u);
  EXPECT_EQ(parsed->entries.size(), bundle.entries.size());

  FileTree applied = old_tree;
  ASSERT_TRUE(ApplyBundle(applied, *parsed));
  EXPECT_EQ(applied, new_tree);
}

TEST(Shotgun, ParseRejectsTruncated) {
  FileTree old_tree = MakeTree(6);
  FileTree new_tree = old_tree;
  new_tree["x"] = RandomBytes(1000, 1);
  Bytes wire = SerializeBundle(MakeBundle(old_tree, new_tree, 512, 1, 2));
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(ParseBundle(wire).has_value());
}

TEST(Shotgun, ReplayBytesAccounting) {
  FileTree old_tree = MakeTree(7);
  FileTree new_tree = old_tree;
  for (auto& [path, bytes] : new_tree) {
    bytes[0] ^= 1;  // touch every file
  }
  const SyncBundle bundle = MakeBundle(old_tree, new_tree, 1024, 1, 2);
  int64_t image_bytes = 0;
  for (const auto& [path, bytes] : new_tree) {
    image_bytes += static_cast<int64_t>(bytes.size());
  }
  // Patching replays old + new: twice the image.
  EXPECT_EQ(bundle.ReplayBytes(), image_bytes * 2);
}

}  // namespace
}  // namespace bullet
