// Conformance layer for the routed sparse-topology subsystem (ctest label
// `routed`): route consistency and symmetry, path-metric composition along the
// returned link lists, bitwise mesh-vs-routed allocator equality when the
// sparse graph encodes the mesh, hand-computed shared-bottleneck max-min
// fixtures, variable-length allocator paths (reference vs incremental), memory
// scaling, and the bounds/overflow regression checks on the dense mesh.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/bandwidth_allocator.h"
#include "src/sim/dynamics.h"
#include "src/sim/network.h"
#include "src/sim/topology.h"

namespace bullet {
namespace {

constexpr double kUnlimited = 1e12;

RoutedTopology::TransitStubParams SmallTransitStub(int nodes) {
  RoutedTopology::TransitStubParams p;
  p.num_nodes = nodes;
  p.transit_domains = 2;
  p.routers_per_transit = 3;
  p.stub_domains_per_transit_router = 2;
  p.routers_per_stub = 3;
  return p;
}

// --- route consistency ---

TEST(RoutedTopology, TransitStubRoutesAreContiguousRouterWalks) {
  Rng rng(71);
  RoutedTopology topo = RoutedTopology::TransitStub(SmallTransitStub(24), rng);
  for (NodeId s = 0; s < 24; ++s) {
    for (NodeId d = 0; d < 24; ++d) {
      if (s == d) {
        continue;
      }
      const Topology::PathView path = topo.InteriorPath(s, d);
      int32_t at = topo.attach(s);
      for (const int32_t edge : path) {
        ASSERT_EQ(topo.edge_from(edge), at) << s << "->" << d;
        at = topo.edge_to(edge);
      }
      EXPECT_EQ(at, topo.attach(d)) << s << "->" << d;
      if (topo.attach(s) == topo.attach(d)) {
        EXPECT_EQ(path.size, 0u);
      } else {
        EXPECT_GE(path.size, 1u);
      }
    }
  }
}

TEST(RoutedTopology, RepeatedQueriesReturnTheCachedRoute) {
  Rng rng(72);
  RoutedTopology topo = RoutedTopology::TransitStub(SmallTransitStub(12), rng);
  const Topology::PathView first = topo.InteriorPath(1, 9);
  const std::vector<int32_t> ids(first.begin(), first.end());
  // Warm unrelated pairs in between (growing the route pool).
  for (NodeId d = 2; d < 12; ++d) {
    topo.InteriorPath(0, d);
  }
  const Topology::PathView again = topo.InteriorPath(1, 9);
  ASSERT_EQ(again.size, ids.size());
  for (uint32_t i = 0; i < again.size; ++i) {
    EXPECT_EQ(again.ids[i], ids[i]);
  }
}

TEST(RoutedTopology, RoutesAreSymmetricWhenShortestPathsAreUnique) {
  // A 4-router chain with distinct duplex delays: every shortest path is
  // unique, so the d->s route must be the mirror of the s->d route.
  RoutedTopology topo(4, 4);
  for (NodeId n = 0; n < 4; ++n) {
    topo.uplink(n) = LinkParams{10e6, MsToSim(1), 0.0};
    topo.downlink(n) = LinkParams{10e6, MsToSim(1), 0.0};
    topo.AttachNode(n, n);
  }
  topo.AddDuplexEdge(0, 1, LinkParams{10e6, MsToSim(3), 0.0});
  topo.AddDuplexEdge(1, 2, LinkParams{10e6, MsToSim(5), 0.0});
  topo.AddDuplexEdge(2, 3, LinkParams{10e6, MsToSim(7), 0.0});
  topo.AddDuplexEdge(0, 3, LinkParams{10e6, MsToSim(50), 0.0});  // never the short way

  const Topology::PathView fwd = topo.InteriorPath(0, 3);
  const std::vector<int32_t> fwd_ids(fwd.begin(), fwd.end());
  const Topology::PathView rev = topo.InteriorPath(3, 0);
  ASSERT_EQ(fwd_ids.size(), 3u);
  ASSERT_EQ(rev.size, fwd_ids.size());
  for (uint32_t i = 0; i < rev.size; ++i) {
    const int32_t mirror = fwd_ids[fwd_ids.size() - 1 - i];
    EXPECT_EQ(topo.edge_from(rev.ids[i]), topo.edge_to(mirror));
    EXPECT_EQ(topo.edge_to(rev.ids[i]), topo.edge_from(mirror));
  }
  EXPECT_EQ(topo.Rtt(0, 3), topo.Rtt(3, 0));
}

// --- path metrics compose along the returned link list ---

TEST(RoutedTopology, PathMetricsEqualCompositionAlongReturnedRoute) {
  Rng rng(73);
  RoutedTopology::TransitStubParams params = SmallTransitStub(18);
  params.transit_loss_min = 0.001;
  params.transit_loss_max = 0.02;
  RoutedTopology topo = RoutedTopology::TransitStub(params, rng);
  for (NodeId s = 0; s < 18; s += 3) {
    for (NodeId d = 1; d < 18; d += 4) {
      if (s == d) {
        continue;
      }
      const Topology::PathView path = topo.InteriorPath(s, d);
      SimTime delay = topo.uplink(s).delay;
      double pass = 1.0;
      for (const int32_t edge : path) {
        delay += topo.interior_link(edge).delay;
        pass *= 1.0 - topo.interior_link(edge).loss_rate;
      }
      pass *= 1.0 - topo.uplink(s).loss_rate;
      pass *= 1.0 - topo.downlink(d).loss_rate;
      delay += topo.downlink(d).delay;
      EXPECT_EQ(topo.PathDelay(s, d), delay);
      EXPECT_EQ(topo.Rtt(s, d), topo.PathDelay(s, d) + topo.PathDelay(d, s));
      EXPECT_DOUBLE_EQ(topo.PathLoss(s, d), 1.0 - pass);
    }
  }
}

TEST(RoutedTopology, SameRouterPairUsesAccessLinksOnly) {
  RoutedTopology topo(3, 1);
  for (NodeId n = 0; n < 3; ++n) {
    topo.uplink(n) = LinkParams{5e6, MsToSim(2), 0.01};
    topo.downlink(n) = LinkParams{5e6, MsToSim(3), 0.0};
    topo.AttachNode(n, 0);
  }
  EXPECT_EQ(topo.InteriorPath(0, 1).size, 0u);
  EXPECT_EQ(topo.PathDelay(0, 1), MsToSim(5));
  EXPECT_DOUBLE_EQ(topo.PathLoss(0, 1), 1.0 - (1.0 - 0.01));
}

// --- mesh-vs-routed bitwise equality when the sparse graph encodes the mesh ---

struct ScriptMsg : Message {
  int id;
  explicit ScriptMsg(int i, int64_t bytes) : id(i) {
    type = 1;
    wire_bytes = bytes;
  }
};

class TimelineRecorder : public NetHandler {
 public:
  explicit TimelineRecorder(Network* net) : net_(net) {}
  void OnConnUp(ConnId conn, NodeId peer, bool initiator) override {
    Record("up", conn, peer, initiator ? 1 : 0);
  }
  void OnConnDown(ConnId conn, NodeId peer) override { Record("down", conn, peer, 0); }
  void OnMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) override {
    Record("msg", conn, from, static_cast<ScriptMsg&>(*msg).id);
  }

  std::vector<std::string> events;

 private:
  void Record(const char* kind, ConnId conn, NodeId peer, int extra) {
    std::ostringstream os;
    os << net_->now() << " " << kind << " c" << conn << " p" << peer << " x" << extra;
    events.push_back(os.str());
  }
  Network* net_;
};

constexpr int kEncodedNodes = 5;

// Per-pair core parameters drawn once, then written into both representations.
// Fixed 10 ms core delay keeps every direct edge the unique shortest route, so
// the routed graph expresses exactly the mesh's path set.
std::vector<LinkParams> DrawCoreParams() {
  Rng rng(4099);
  std::vector<LinkParams> core(kEncodedNodes * kEncodedNodes);
  for (NodeId s = 0; s < kEncodedNodes; ++s) {
    for (NodeId d = 0; d < kEncodedNodes; ++d) {
      if (s == d) {
        continue;
      }
      core[static_cast<size_t>(s) * kEncodedNodes + d] =
          LinkParams{rng.UniformDouble(1e6, 3e6), MsToSim(10), rng.UniformDouble(0.0, 0.02)};
    }
  }
  return core;
}

std::unique_ptr<Topology> EncodedMesh(const std::vector<LinkParams>& core) {
  auto topo = std::make_unique<MeshTopology>(kEncodedNodes);
  for (NodeId n = 0; n < kEncodedNodes; ++n) {
    topo->uplink(n) = LinkParams{6e6, MsToSim(1), 0.0};
    topo->downlink(n) = LinkParams{6e6, MsToSim(1), 0.0};
  }
  for (NodeId s = 0; s < kEncodedNodes; ++s) {
    for (NodeId d = 0; d < kEncodedNodes; ++d) {
      if (s != d) {
        topo->core(s, d) = core[static_cast<size_t>(s) * kEncodedNodes + d];
      }
    }
  }
  return topo;
}

std::unique_ptr<Topology> EncodedRouted(const std::vector<LinkParams>& core) {
  auto topo = std::make_unique<RoutedTopology>(kEncodedNodes, kEncodedNodes);
  for (NodeId n = 0; n < kEncodedNodes; ++n) {
    topo->uplink(n) = LinkParams{6e6, MsToSim(1), 0.0};
    topo->downlink(n) = LinkParams{6e6, MsToSim(1), 0.0};
    topo->AttachNode(n, n);
  }
  for (NodeId s = 0; s < kEncodedNodes; ++s) {
    for (NodeId d = 0; d < kEncodedNodes; ++d) {
      if (s != d) {
        topo->AddEdge(s, d, core[static_cast<size_t>(s) * kEncodedNodes + d]);
      }
    }
  }
  return topo;
}

// A traffic script exercising allocation (several concurrent flows), the loss
// RNG stream, a close, a node failure, and the periodic correlated bandwidth
// halving. Returns every handler event of every node, in order.
std::vector<std::string> RunEncodedScript(std::unique_ptr<Topology> topo,
                                          const NetworkConfig& config) {
  Network net(std::move(topo), config, 515151);
  std::vector<std::unique_ptr<TimelineRecorder>> handlers;
  for (NodeId n = 0; n < kEncodedNodes; ++n) {
    handlers.push_back(std::make_unique<TimelineRecorder>(&net));
    net.SetHandler(n, handlers.back().get());
  }
  BandwidthDynamicsParams dyn;
  dyn.period = SecToSim(2.0);
  StartPeriodicBandwidthChanges(net, dyn);

  const ConnId c01 = net.Connect(0, 1);
  const ConnId c02 = net.Connect(0, 2);
  const ConnId c12 = net.Connect(1, 2);
  const ConnId c34 = net.Connect(3, 4);
  int next_id = 0;
  for (int burst = 0; burst < 5; ++burst) {
    net.queue().Schedule(SecToSim(0.2) + burst * SecToSim(1.3) + MsToSim(3), [&, burst] {
      net.Send(c01, 0, std::make_unique<ScriptMsg>(next_id++, 150 * 1024));
      net.Send(c02, 0, std::make_unique<ScriptMsg>(next_id++, 48 * 1024));
      if (burst % 2 == 0) {
        net.Send(c12, 2, std::make_unique<ScriptMsg>(next_id++, 24 * 1024));
        net.Send(c34, 3, std::make_unique<ScriptMsg>(next_id++, 384 * 1024));
      }
    });
  }
  net.queue().Schedule(SecToSim(3.1) + MsToSim(1), [&] { net.Close(c12); });
  net.queue().Schedule(SecToSim(4.6) + MsToSim(7), [&] { net.FailNode(4); });
  net.Run(SecToSim(9.0));

  std::vector<std::string> all;
  for (auto& h : handlers) {
    for (auto& e : h->events) {
      all.push_back(std::move(e));
    }
  }
  return all;
}

TEST(RoutedTopology, RoutedEncodingOfMeshIsBitwiseIdentical) {
  const std::vector<LinkParams> core = DrawCoreParams();
  for (const auto mode : {NetworkConfig::AllocatorMode::kIncremental,
                          NetworkConfig::AllocatorMode::kFullRecompute}) {
    NetworkConfig config;
    config.allocator_mode = mode;
    const std::vector<std::string> mesh_events = RunEncodedScript(EncodedMesh(core), config);
    const std::vector<std::string> routed_events = RunEncodedScript(EncodedRouted(core), config);
    ASSERT_FALSE(mesh_events.empty());
    ASSERT_EQ(mesh_events.size(), routed_events.size());
    for (size_t i = 0; i < mesh_events.size(); ++i) {
      EXPECT_EQ(mesh_events[i], routed_events[i]) << "event " << i;
    }
  }
}

// --- hand-computed shared-bottleneck max-min fixtures ---

RoutedTopology Dumbbell(double left_uplink0_bps, double left_uplink1_bps) {
  RoutedTopology topo(4, 2);
  const double access[4] = {left_uplink0_bps, left_uplink1_bps, 100e6, 100e6};
  for (NodeId n = 0; n < 4; ++n) {
    topo.uplink(n) = LinkParams{access[n], MsToSim(1), 0.0};
    topo.downlink(n) = LinkParams{100e6, MsToSim(1), 0.0};
    topo.AttachNode(n, n < 2 ? 0 : 1);
  }
  topo.AddDuplexEdge(0, 1, LinkParams{6e6, MsToSim(5), 0.0});
  return topo;
}

TEST(RoutedTopology, SharedBottleneckSplitsMaxMinFairly) {
  Network net(Dumbbell(100e6, 100e6), NetworkConfig{}, 7);
  const ConnId c02 = net.Connect(0, 2);
  const ConnId c13 = net.Connect(1, 3);
  net.Run(SecToSim(0.5));
  net.Send(c02, 0, std::make_unique<ScriptMsg>(0, 32 * 1024 * 1024));
  net.Send(c13, 1, std::make_unique<ScriptMsg>(1, 32 * 1024 * 1024));
  net.Run(SecToSim(6.0));  // far past slow start
  // Two flows share the 6 Mbps dumbbell core: 3 Mbps each.
  EXPECT_NEAR(net.CurrentRateBps(c02, 0), 3e6, 1.0);
  EXPECT_NEAR(net.CurrentRateBps(c13, 1), 3e6, 1.0);
  EXPECT_GE(net.max_interior_link_flows(), 2);

  // The survivor takes the whole link on the quantum after the other closes.
  net.Close(c13);
  net.Run(net.now() + MsToSim(20));
  EXPECT_NEAR(net.CurrentRateBps(c02, 0), 6e6, 1.0);
}

TEST(RoutedTopology, CapLimitedFlowReleasesSharedBottleneckShare) {
  // Node 1's 1 Mbps uplink caps its flow; the other flow takes the remaining
  // 5 Mbps of the shared core link (classic max-min redistribution).
  Network net(Dumbbell(100e6, 1e6), NetworkConfig{}, 7);
  const ConnId c02 = net.Connect(0, 2);
  const ConnId c13 = net.Connect(1, 3);
  net.Run(SecToSim(0.5));
  net.Send(c02, 0, std::make_unique<ScriptMsg>(0, 32 * 1024 * 1024));
  net.Send(c13, 1, std::make_unique<ScriptMsg>(1, 8 * 1024 * 1024));
  net.Run(SecToSim(6.0));
  EXPECT_NEAR(net.CurrentRateBps(c13, 1), 1e6, 1.0);
  EXPECT_NEAR(net.CurrentRateBps(c02, 0), 5e6, 1.0);
}

TEST(RoutedTopology, SharedLinkDynamicsDegradeEveryFlowOnIt) {
  // Halving the path bandwidth of one (s, r) pair on a routed graph degrades
  // the shared dumbbell link, so the *other* pair's flow slows too — exactly
  // what the private-core mesh cannot express.
  Network net(Dumbbell(100e6, 100e6), NetworkConfig{}, 7);
  const ConnId c02 = net.Connect(0, 2);
  const ConnId c13 = net.Connect(1, 3);
  net.Run(SecToSim(0.5));
  net.Send(c02, 0, std::make_unique<ScriptMsg>(0, 32 * 1024 * 1024));
  net.Send(c13, 1, std::make_unique<ScriptMsg>(1, 32 * 1024 * 1024));
  net.Run(SecToSim(6.0));
  net.topology().ScalePathBandwidth(0, 2, 0.5);  // 6 -> 3 Mbps shared
  net.Run(net.now() + MsToSim(20));
  EXPECT_NEAR(net.CurrentRateBps(c02, 0), 1.5e6, 1.0);
  EXPECT_NEAR(net.CurrentRateBps(c13, 1), 1.5e6, 1.0);
}

// --- variable-length allocator paths ---

TEST(AllocatorPaths, HandComputedChainSharedByTwoFlows) {
  // Links: 0 (10), 1 (4), 2 (6) Mbps. Flow A crosses 0-1-2, flow B crosses 1,
  // flow C crosses 0 and 2. Max-min: link 1 splits 2/2 between A and B; C then
  // gets min(10, 6) - 2 = 4 on links 0/2.
  std::vector<PathFlowSpec> flows(3);
  flows[0].links = {0, 1, 2};
  flows[0].cap_bps = kUnlimited;
  flows[1].links = {1};
  flows[1].cap_bps = kUnlimited;
  flows[2].links = {0, 2};
  flows[2].cap_bps = kUnlimited;
  AllocateMaxMinPaths(flows, {10e6, 4e6, 6e6});
  EXPECT_NEAR(flows[0].rate_bps, 2e6, 1.0);
  EXPECT_NEAR(flows[1].rate_bps, 2e6, 1.0);
  EXPECT_NEAR(flows[2].rate_bps, 4e6, 1.0);
}

TEST(AllocatorPaths, ThreeLinkPathsMatchLegacyEntryPointBitwise) {
  Rng rng(909);
  for (int instance = 0; instance < 20; ++instance) {
    const int num_links = static_cast<int>(rng.UniformInt(1, 20));
    const int num_flows = static_cast<int>(rng.UniformInt(1, 60));
    std::vector<double> capacity(static_cast<size_t>(num_links));
    for (auto& c : capacity) {
      c = rng.UniformDouble(0.5e6, 20e6);
    }
    std::vector<FlowSpec> fixed;
    std::vector<PathFlowSpec> paths;
    for (int i = 0; i < num_flows; ++i) {
      FlowSpec f;
      PathFlowSpec p;
      const int nlinks = static_cast<int>(rng.UniformInt(1, 3));
      for (int l = 0; l < nlinks; ++l) {
        f.links[l] = static_cast<int32_t>(rng.UniformInt(0, num_links - 1));
      }
      p.links.assign(f.links, f.links + 3);
      f.cap_bps = p.cap_bps = rng.Bernoulli(0.3) ? rng.UniformDouble(0.1e6, 5e6) : kUnlimited;
      fixed.push_back(f);
      paths.push_back(std::move(p));
    }
    AllocateMaxMin(fixed, capacity);
    AllocateMaxMinPaths(paths, capacity);
    for (int i = 0; i < num_flows; ++i) {
      EXPECT_EQ(fixed[static_cast<size_t>(i)].rate_bps, paths[static_cast<size_t>(i)].rate_bps)
          << "instance " << instance << " flow " << i;
    }
  }
}

TEST(AllocatorPaths, IncrementalPathEngineMatchesReferenceBitwise) {
  Rng rng(911);
  IncrementalMaxMin inc;
  for (int instance = 0; instance < 40; ++instance) {
    const int num_links = static_cast<int>(rng.UniformInt(1, 24));
    const int num_flows = static_cast<int>(rng.UniformInt(1, 80));
    std::vector<double> capacity(static_cast<size_t>(num_links));
    inc.BeginEpoch(0);
    for (auto& c : capacity) {
      // Tie-heavy: quantized capacities produce equal fair shares.
      c = 1e6 * rng.UniformInt(1, 8);
      inc.AddLink(c);
    }
    std::vector<PathFlowSpec> flows;
    for (int i = 0; i < num_flows; ++i) {
      PathFlowSpec f;
      const int nlinks = static_cast<int>(rng.UniformInt(0, 6));
      for (int l = 0; l < nlinks; ++l) {
        f.links.push_back(static_cast<int32_t>(rng.UniformInt(0, num_links - 1)));
      }
      f.cap_bps = rng.Bernoulli(0.25) ? 1e6 * rng.UniformInt(1, 5) : kUnlimited;
      inc.AddFlowPath(f.links.data(), f.links.size(), f.cap_bps);
      flows.push_back(std::move(f));
    }
    inc.Allocate();
    AllocateMaxMinPaths(flows, capacity);
    for (int i = 0; i < num_flows; ++i) {
      EXPECT_EQ(inc.rate(static_cast<size_t>(i)), flows[static_cast<size_t>(i)].rate_bps)
          << "instance " << instance << " flow " << i;
    }
  }
}

// --- memory scaling ---

TEST(RoutedTopology, BuildFootprintScalesLinearlyNotQuadratically) {
  auto footprint = [](int nodes) {
    Rng rng(1234);
    RoutedTopology::TransitStubParams p = SmallTransitStub(nodes);
    // Scale the stub tier with the overlay, as the fig17 bench does.
    p.stub_domains_per_transit_router = std::max(2, nodes / 48);
    const RoutedTopology topo = RoutedTopology::TransitStub(p, rng);
    return topo.MemoryFootprintBytes();
  };
  const size_t at1000 = footprint(1000);
  const size_t at2000 = footprint(2000);
  // Doubling the overlay must not quadruple the build footprint (sub-quadratic;
  // the shape above is ~linear).
  EXPECT_LT(static_cast<double>(at2000), 3.0 * static_cast<double>(at1000));
  // And it must be nowhere near the dense mesh's N^2 core matrix.
  EXPECT_LT(static_cast<double>(at2000), 0.01 * (2000.0 * 2000.0 * sizeof(LinkParams)));
}

TEST(RoutedTopology, RouteCacheGrowsOnlyWithQueriedPairs) {
  Rng rng(4321);
  RoutedTopology topo = RoutedTopology::TransitStub(SmallTransitStub(64), rng);
  const size_t before = topo.route_cache_bytes();
  topo.InteriorPath(0, 1);
  const size_t one_pair = topo.route_cache_bytes();
  EXPECT_GT(one_pair, before);
  for (NodeId d = 2; d < 32; ++d) {
    topo.InteriorPath(0, d);
  }
  EXPECT_GT(topo.route_cache_bytes(), one_pair);
}

// --- bounds / overflow regression checks (BULLET_CHECK) ---

TEST(TopologyBoundsDeathTest, MeshRefusesIdSpaceOverflow) {
  // 46341^2 > INT32_MAX: core ids would alias. Must die, not wrap.
  EXPECT_DEATH(MeshTopology topo(MeshTopology::kMaxNodes + 1), "BULLET_CHECK");
}

TEST(TopologyBoundsDeathTest, AccessLinkIndexIsBoundsChecked) {
  MeshTopology topo(4);
  EXPECT_DEATH(topo.uplink(-1), "BULLET_CHECK");
  EXPECT_DEATH(topo.downlink(4), "BULLET_CHECK");
  EXPECT_DEATH(topo.core(0, 7), "BULLET_CHECK");
}

TEST(TopologyBoundsDeathTest, RoutedEdgesFreezeAfterFirstRouteQuery) {
  RoutedTopology topo(2, 2);
  topo.AttachNode(0, 0);
  topo.AttachNode(1, 1);
  topo.AddDuplexEdge(0, 1, LinkParams{1e6, MsToSim(1), 0.0});
  topo.InteriorPath(0, 1);
  EXPECT_DEATH(topo.AddEdge(0, 1, LinkParams{1e6, MsToSim(1), 0.0}), "BULLET_CHECK");
}

TEST(TopologyBoundsDeathTest, RoutedRequiresConnectedAttachRouters) {
  RoutedTopology topo(2, 3);
  topo.AttachNode(0, 0);
  topo.AttachNode(1, 2);
  topo.AddDuplexEdge(0, 1, LinkParams{1e6, MsToSim(1), 0.0});  // router 2 isolated
  EXPECT_DEATH(topo.InteriorPath(0, 1), "BULLET_CHECK");
}

}  // namespace
}  // namespace bullet
