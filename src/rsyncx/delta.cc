#include "src/rsyncx/delta.h"

#include <unordered_map>

#include "src/rsyncx/rolling_checksum.h"

namespace bullet {

FileSignature ComputeSignature(const Bytes& data, size_t block_size) {
  FileSignature sig;
  sig.block_size = block_size;
  sig.file_size = data.size();
  for (size_t off = 0; off < data.size(); off += block_size) {
    const size_t len = std::min(block_size, data.size() - off);
    BlockSignature bs;
    bs.weak = RollingChecksum::Compute(data.data() + off, len);
    bs.strong = StrongDigest(data.data() + off, len);
    sig.blocks.push_back(bs);
  }
  return sig;
}

int64_t FileDelta::LiteralBytes() const {
  int64_t n = 0;
  for (const auto& cmd : commands) {
    if (cmd.kind == DeltaCommand::Kind::kLiteral) {
      n += static_cast<int64_t>(cmd.literal.size());
    }
  }
  return n;
}

int64_t FileDelta::WireBytes() const {
  int64_t n = 16;  // header: block size, new size, command count
  for (const auto& cmd : commands) {
    n += cmd.kind == DeltaCommand::Kind::kCopy ? 9 : 5 + static_cast<int64_t>(cmd.literal.size());
  }
  return n;
}

FileDelta ComputeDelta(const Bytes& new_data, const FileSignature& sig) {
  FileDelta delta;
  delta.block_size = sig.block_size;
  delta.new_size = new_data.size();

  // Weak checksum -> candidate old-block indices. (The last, possibly short, old
  // block only matches at the very end of the new file; for simplicity it is indexed
  // too and verified by length-aware strong digests.)
  std::unordered_map<uint32_t, std::vector<uint32_t>> weak_index;
  for (uint32_t i = 0; i < sig.blocks.size(); ++i) {
    weak_index[sig.blocks[i].weak].push_back(i);
  }
  const size_t bs = sig.block_size;
  const size_t full_blocks = sig.file_size / bs;  // old blocks of exactly bs bytes

  Bytes pending_literal;
  auto flush_literal = [&] {
    if (!pending_literal.empty()) {
      DeltaCommand cmd;
      cmd.kind = DeltaCommand::Kind::kLiteral;
      cmd.literal = std::move(pending_literal);
      pending_literal.clear();
      delta.commands.push_back(std::move(cmd));
    }
  };
  auto emit_copy = [&](uint32_t block_index) {
    if (!delta.commands.empty() &&
        delta.commands.back().kind == DeltaCommand::Kind::kCopy &&
        delta.commands.back().block_index + delta.commands.back().count == block_index) {
      ++delta.commands.back().count;  // Extend the run.
    } else {
      DeltaCommand cmd;
      cmd.kind = DeltaCommand::Kind::kCopy;
      cmd.block_index = block_index;
      cmd.count = 1;
      delta.commands.push_back(cmd);
    }
  };

  size_t pos = 0;
  RollingChecksum rc;
  bool rc_valid = false;
  while (pos < new_data.size()) {
    const size_t window = std::min(bs, new_data.size() - pos);
    if (window < bs) {
      // Tail shorter than a block: try to match the old file's short tail block.
      bool matched = false;
      if (sig.file_size % bs != 0) {
        const uint32_t tail_index = static_cast<uint32_t>(sig.blocks.size()) - 1;
        const size_t tail_len = sig.file_size % bs;
        if (tail_len == window) {
          const uint32_t weak = RollingChecksum::Compute(new_data.data() + pos, window);
          if (weak == sig.blocks[tail_index].weak &&
              StrongDigest(new_data.data() + pos, window) == sig.blocks[tail_index].strong) {
            flush_literal();
            emit_copy(tail_index);
            pos += window;
            matched = true;
          }
        }
      }
      if (!matched) {
        pending_literal.insert(pending_literal.end(), new_data.begin() + static_cast<long>(pos),
                               new_data.end());
        pos = new_data.size();
      }
      break;
    }

    if (!rc_valid) {
      rc.Init(new_data.data() + pos, bs);
      rc_valid = true;
    }
    bool matched = false;
    const auto it = weak_index.find(rc.value());
    if (it != weak_index.end()) {
      const Digest128 strong = StrongDigest(new_data.data() + pos, bs);
      for (const uint32_t idx : it->second) {
        if (idx < full_blocks && sig.blocks[idx].strong == strong) {
          flush_literal();
          emit_copy(idx);
          pos += bs;
          rc_valid = false;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      pending_literal.push_back(new_data[pos]);
      if (pos + bs < new_data.size()) {
        rc.Roll(new_data[pos], new_data[pos + bs]);
      } else {
        rc_valid = false;
      }
      ++pos;
    }
  }
  flush_literal();
  return delta;
}

Bytes ApplyDelta(const Bytes& old_data, const FileDelta& delta) {
  Bytes out;
  out.reserve(delta.new_size);
  const size_t bs = delta.block_size;
  for (const auto& cmd : delta.commands) {
    if (cmd.kind == DeltaCommand::Kind::kLiteral) {
      out.insert(out.end(), cmd.literal.begin(), cmd.literal.end());
      continue;
    }
    for (uint32_t i = 0; i < cmd.count; ++i) {
      const size_t off = static_cast<size_t>(cmd.block_index + i) * bs;
      if (off >= old_data.size()) {
        return {};
      }
      const size_t len = std::min(bs, old_data.size() - off);
      out.insert(out.end(), old_data.begin() + static_cast<long>(off),
                 old_data.begin() + static_cast<long>(off + len));
    }
  }
  return out;
}

}  // namespace bullet
