// fig24_megaswarm (extension, no paper figure): the mega-swarm scale regime.
// The paper deploys Bullet' on hundreds of PlanetLab/ModelNet nodes; this
// scenario pushes the *simulator* to 100,000 swarm members on one machine to
// exercise the scale subsystem end to end:
//
//   * compressed routes (RoutedTopology::EnableSegmentCompression) — per-pair
//     interior routes are composed from shared gateway-to-gateway segments
//     instead of being cached whole, so route memory scales with the router
//     graph, not with member pairs;
//   * aggregated flows (NetworkConfig::aggregate_flows) — the allocator
//     water-fills bundles of flows sharing an interior route, bounding epoch
//     cost by router pairs instead of live flows;
//   * arena-backed node state — the per-node peer tables live in pooled
//     arenas whose live/peak bytes the run reports.
//
// Membership is a flash crowd (the fig18 shape via the generator API): a
// quarter of the receivers seed the swarm at t=0 and the rest pile in
// mid-transfer. The file is deliberately small — the scenario measures *swarm
// scale* (members, flows, routes), not transfer length, and 100k members
// downloading even a small file dominates any per-node cost.
//
// The memory telemetry lands as scalars (route_cache_bytes, path_pool_bytes,
// arena_peak_bytes), which the sweep engine turns into the bullet-ceilings-v1
// companion document; CI gates the megaswarm sweep one-sidedly against the
// committed ceilings (bench/baselines/megaswarm_ceilings.json) and against
// the usual events/sec floors.

#include <algorithm>
#include <cmath>
#include <memory>

#include "bench/session_common.h"
#include "src/harness/scenario_registry.h"
#include "src/harness/workload_gen.h"

namespace bullet {
namespace {

BULLET_SCENARIO_TRANSIT_STUB_DEFAULT(fig24_megaswarm);

BULLET_SCENARIO(fig24_megaswarm,
                "Extension — mega-swarm: 100k-member flash crowd on compressed routes, "
                "aggregated flows and arena node state") {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.num_nodes = 100000;
  // Small on purpose: per-member work, not transfer length, is the load.
  // Pre-scale 1 MB (CI runs 20%) over 64 KB blocks keeps the block space tiny
  // while every member still exercises the request/diff/serve machinery.
  cfg.file_mb = ScaledFileMb(1.0);
  cfg.block_bytes = 64 * 1024;
  cfg.seed = 2401;
  cfg.deadline = SecToSim(7200.0);
  cfg.compress_routes = true;
  cfg.aggregate_flows = true;
  ApplyScenarioOptions(opts, &cfg);
  // The scenario *is* the mega-swarm routed graph; like fig17/perf_core_*,
  // a --topology override does not apply.
  cfg.topo = ScenarioConfig::Topo::kTransitStub;
  cfg.transit_stub = ScaledTransitStub(cfg.num_nodes);

  const double late_fraction = cfg.join_fraction >= 0.0 ? cfg.join_fraction : 0.75;
  // Mid-transfer of the early cohort (see fig18's reasoning); the crowd lands
  // while the seeders are still downloading, so the mesh must absorb it.
  const double join_sec = 0.5 * TcpFeasibleSeconds(cfg.file_mb, 6e6, /*startup_sec=*/12.0);

  WorkloadSpec workload;
  SessionSpec session;
  session.protocol = ScenarioSystemOr(cfg, "bullet-prime");
  session.seed = cfg.seed;
  for (NodeId node = 0; node < cfg.num_nodes; ++node) {
    session.members.push_back(node);
  }
  session.arrivals = std::make_shared<FlashCrowdArrivals>(late_fraction, SecToSim(join_sec));
  workload.sessions.push_back(session);

  const WorkloadResult wl = RunScenarioWorkload(cfg, workload);
  const ScenarioResult result = ToScenarioResult(wl.sessions.front(), wl);

  ScenarioReport report(kScenarioName);
  report.AddCompletion(result.name, result);
  report.AddScalar("members", static_cast<double>(cfg.num_nodes));
  report.AddScalar("late_fraction", late_fraction);
  report.AddScalar("late_join_s", join_sec);
  report.AddScalar("sessions_completed", wl.sessions_completed);
  // Deterministic memory telemetry — the ceilings gate's inputs. Byte
  // counters, not RSS: identical for a given spec on every machine.
  report.AddScalar("route_cache_bytes", static_cast<double>(wl.route_cache_bytes));
  report.AddScalar("path_pool_bytes", static_cast<double>(wl.path_pool_bytes));
  report.AddScalar("arena_peak_bytes", static_cast<double>(wl.arena_peak_bytes));
  return report;
}

}  // namespace
}  // namespace bullet
