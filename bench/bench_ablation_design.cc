// Ablations beyond the paper's figures, probing the design choices DESIGN.md calls
// out (all on the lossy Section 4.1 mesh):
//
//  * trim threshold — the paper chose 1.5 sigma ("1 would lead to too many nodes
//    being closed whereas 2 would only permit a very few peers to ever be closed");
//    we sweep {off, 1.0, 1.5, 2.0}.
//  * availability piggybacking — Section 3.3.4's self-clocking diffs ride on data
//    blocks; piggyback budget 0 forces all availability onto explicit diff messages.
//  * source push order — round-robin (every block enters the overlay once before
//    any repeat) vs random child selection.

#include "bench/bench_util.h"

namespace bullet {
namespace {

ScenarioConfig MeshConfig(uint64_t seed) {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = bench::ScaledFileMb(100.0);
  cfg.seed = seed;
  return cfg;
}

void BM_TrimSigma(benchmark::State& state) {
  const int tenths = static_cast<int>(state.range(0));  // 0 = trimming off
  BulletPrimeConfig bp;
  std::string name;
  if (tenths == 0) {
    bp.trim_stddevs = 1e9;  // never trims
    name = "trim off";
  } else {
    bp.trim_stddevs = tenths / 10.0;
    name = "trim " + std::to_string(tenths / 10.0).substr(0, 3) + " sigma";
  }
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(System::kBulletPrime, MeshConfig(2001), bp);
    bench::ReportCompletion(state, name, r);
  }
}
BENCHMARK(BM_TrimSigma)->Arg(15)->Arg(10)->Arg(20)->Arg(0)->Iterations(1)->Unit(
    benchmark::kMillisecond);

void BM_Piggyback(benchmark::State& state) {
  const int limit = static_cast<int>(state.range(0));
  BulletPrimeConfig bp;
  bp.piggyback_limit = limit;
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(System::kBulletPrime, MeshConfig(2002), bp);
    bench::ReportCompletion(state, "piggyback " + std::to_string(limit), r);
  }
}
BENCHMARK(BM_Piggyback)->Arg(32)->Arg(8)->Arg(0)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SourcePush(benchmark::State& state) {
  const bool random = state.range(0) != 0;
  BulletPrimeConfig bp;
  bp.source_random_push = random;
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(System::kBulletPrime, MeshConfig(2003), bp);
    bench::ReportCompletion(state, random ? "source random push" : "source round-robin push", r);
  }
}
BENCHMARK(BM_SourcePush)->Arg(0)->Arg(1)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Ablations — trim threshold, piggybacking, source push order")
