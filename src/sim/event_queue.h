// Discrete-event core. A binary heap of (time, sequence)-ordered callbacks; the
// sequence number makes execution order deterministic among same-time events.
//
// Hot-path design (PR 3): callbacks are stored inline in the heap entries as
// move-only closures (UniqueFunction) instead of behind a per-event
// unordered_map<id, std::function> — scheduling an event costs one heap push and
// zero rehashes, and closures capturing a unique_ptr (message deliveries) need no
// shared_ptr wrapper. Cancellation is tracked in a flat per-id state array; ids
// are monotonic, so the array is append-only and O(1) to index. The (time, seq)
// key is a strict total order (seq is unique), so the execution sequence is
// independent of the heap's internal layout — this is what makes the
// representation swap byte-identical to the previous map-based implementation.
//
// Thread-safety: none — an EventQueue is never shared between threads
// concurrently. The sweep engine gets its parallelism from whole-run isolation
// (one network + queue per worker). The parallel engine (network.cc) gets its
// parallelism from whole-queue ownership handoff: each partition's queue is
// driven by exactly one worker during a superstep window (RunWindow), and only
// by the coordinator between windows (merge/schedule at the barrier); the
// barrier's synchronizes-with edges make that handoff race-free without any
// locking here.
//
// Profiling: Schedule() counts into the `event_schedule` phase and RunNext()
// wraps callback execution in an `event_dispatch` timed scope
// (src/common/profiler.h). Both compile to nothing without -DBULLET_PROFILE=ON,
// and in profiled builds they only read/update counters — event order, times
// and results are bit-identical with and without profiling.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace bullet {

using EventId = uint64_t;

// Minimal move-only callable wrapper with inline storage. std::function requires
// copyable targets, which forced message-delivery closures to hold their
// unique_ptr<Message> behind a shared_ptr; this type owns move-only captures
// directly. Closures up to kInlineBytes live in the heap entry itself; larger
// ones fall back to a single heap allocation.
class UniqueFunction {
 public:
  static constexpr size_t kInlineBytes = 48;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vtable_ = InlineVTable<Fn>();
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      vtable_ = HeapVTable<Fn>();
    }
  }

  UniqueFunction(UniqueFunction&& o) noexcept {
    if (o.vtable_ != nullptr) {
      o.vtable_->relocate(o.buf_, buf_);
      vtable_ = o.vtable_;
      o.vtable_ = nullptr;
    }
  }

  UniqueFunction& operator=(UniqueFunction&& o) noexcept {
    if (this != &o) {
      Reset();
      if (o.vtable_ != nullptr) {
        o.vtable_->relocate(o.buf_, buf_);
        vtable_ = o.vtable_;
        o.vtable_ = nullptr;
      }
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { Reset(); }

  void operator()() { vtable_->invoke(buf_); }
  explicit operator bool() const { return vtable_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(unsigned char*);
    // Move-construct into `to` and destroy the source.
    void (*relocate)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  static const VTable* InlineVTable() {
    static const VTable vt = {
        [](unsigned char* b) { (*std::launder(reinterpret_cast<Fn*>(b)))(); },
        [](unsigned char* from, unsigned char* to) {
          Fn* src = std::launder(reinterpret_cast<Fn*>(from));
          ::new (static_cast<void*>(to)) Fn(std::move(*src));
          src->~Fn();
        },
        [](unsigned char* b) { std::launder(reinterpret_cast<Fn*>(b))->~Fn(); },
    };
    return &vt;
  }

  template <typename Fn>
  static const VTable* HeapVTable() {
    static const VTable vt = {
        [](unsigned char* b) { (**reinterpret_cast<Fn**>(b))(); },
        [](unsigned char* from, unsigned char* to) {
          *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
        },
        [](unsigned char* b) { delete *reinterpret_cast<Fn**>(b); },
    };
    return &vt;
  }

  void Reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

class EventQueue {
 public:
  using Callback = UniqueFunction;

  SimTime now() const { return now_; }

  // Schedules `cb` at absolute simulated time `at` (clamped to now). Returns an id
  // usable with Cancel().
  EventId Schedule(SimTime at, Callback cb);
  EventId ScheduleAfter(SimTime delay, Callback cb) { return Schedule(now_ + delay, std::move(cb)); }

  // Cancels a pending event. Cancelling an already-fired or unknown id is a no-op.
  void Cancel(EventId id);

  bool Empty() const { return live_ == 0; }
  size_t pending() const { return live_; }

  // Runs events until the queue is empty, `until` is passed, or Stop() is called.
  // Returns the number of events executed.
  uint64_t RunUntil(SimTime until);

  // Runs events with `at < end` (exclusive upper bound, unlike RunUntil's
  // inclusive one) and then advances now() to `end`. The parallel engine runs
  // each partition's queue over the window [t_k, t_k + quantum) with this, so
  // events landing exactly on a quantum boundary execute after that boundary's
  // barrier work — deterministically, in every partition. Returns the number of
  // events executed.
  uint64_t RunWindow(SimTime end);

  // Advances now() to `t` without running anything. Precondition: no pending
  // event is earlier than `t` (BULLET_CHECKed indirectly by Schedule's clamp
  // staying a no-op). The coordinator uses this to pin the global queue's clock
  // to the barrier time before ticking the allocator.
  void SyncNow(SimTime t) {
    if (t > now_) {
      now_ = t;
    }
  }

  // Requests RunUntil to return after the current event completes.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

 private:
  enum class EventState : uint8_t { kPending, kDone };

  struct Entry {
    SimTime at;
    uint64_t seq;  // unique => (at, seq) is a strict total order
    UniqueFunction fn;
    // Heap entries are ordered earliest-first; ties broken by insertion order.
    bool operator>(const Entry& o) const {
      if (at != o.at) {
        return at > o.at;
      }
      return seq > o.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;  // pending (not cancelled, not fired) events
  bool stopped_ = false;
  std::vector<Entry> heap_;
  // state_[seq] for every event ever scheduled; ids are seq + 1. Grows one byte
  // per event, which is bounded by the run's total event count.
  std::vector<EventState> state_;
};

}  // namespace bullet

#endif  // SRC_SIM_EVENT_QUEUE_H_
