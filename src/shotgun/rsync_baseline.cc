#include "src/shotgun/rsync_baseline.h"

#include <algorithm>

namespace bullet {

// --------------------------------- server ----------------------------------

void RsyncServer::OnMessage(ConnId conn, NodeId /*from*/, std::unique_ptr<Message> msg) {
  switch (msg->type) {
    case rs::SessionRequestMsg::kType: {
      if (active_sessions_ < config_.max_parallel) {
        Grant(conn);
      } else {
        waiting_.push_back(conn);
      }
      return;
    }
    case rs::SignatureMsg::kType: {
      // Walk the image and compute the delta. The disk is a single shared FIFO
      // resource: sessions queue behind each other.
      const SimTime start = std::max(now(), disk_busy_until_);
      const SimTime service = SecToSim(static_cast<double>(config_.server_scan_bytes) /
                                       config_.server_disk_Bps);
      disk_busy_until_ = start + service;
      queue().Schedule(disk_busy_until_, [this, conn] {
        if (!net().IsOpen(conn)) {
          FinishSession();
          return;
        }
        auto delta = std::make_unique<rs::DeltaStreamMsg>();
        delta->type = rs::DeltaStreamMsg::kType;
        delta->wire_bytes = config_.delta_bytes;
        net().Send(conn, self(), std::move(delta));
      });
      return;
    }
    case rs::SessionDoneMsg::kType: {
      FinishSession();
      return;
    }
    default:
      return;
  }
}

void RsyncServer::OnConnDown(ConnId conn, NodeId /*peer*/) {
  waiting_.erase(std::remove(waiting_.begin(), waiting_.end(), conn), waiting_.end());
}

void RsyncServer::Grant(ConnId conn) {
  ++active_sessions_;
  net().Send(conn, self(), std::make_unique<rs::SessionGrantMsg>());
}

void RsyncServer::FinishSession() {
  active_sessions_ = std::max(0, active_sessions_ - 1);
  while (active_sessions_ < config_.max_parallel && !waiting_.empty()) {
    const ConnId next = waiting_.front();
    waiting_.pop_front();
    if (net().IsOpen(next)) {
      Grant(next);
    }
  }
}

// --------------------------------- client ----------------------------------

void RsyncClient::Start() { conn_ = net().Connect(self(), server_); }

void RsyncClient::OnConnUp(ConnId conn, NodeId /*peer*/, bool initiator) {
  if (conn == conn_ && initiator) {
    net().Send(conn_, self(), std::make_unique<rs::SessionRequestMsg>());
  }
}

void RsyncClient::OnMessage(ConnId /*conn*/, NodeId /*from*/, std::unique_ptr<Message> msg) {
  switch (msg->type) {
    case rs::SessionGrantMsg::kType: {
      // Compute the signature of the local image (client disk read), then upload it.
      const SimTime scan =
          SecToSim(static_cast<double>(config_.replay_bytes) / 2.0 / config_.client_disk_Bps);
      queue().ScheduleAfter(scan, [this] {
        if (!net().IsOpen(conn_)) {
          return;
        }
        auto sig = std::make_unique<rs::SignatureMsg>();
        sig->type = rs::SignatureMsg::kType;
        sig->wire_bytes = config_.sig_bytes;
        net().Send(conn_, self(), std::move(sig));
      });
      return;
    }
    case rs::DeltaStreamMsg::kType: {
      download_done_at_ = now();
      net().Send(conn_, self(), std::make_unique<rs::SessionDoneMsg>());
      // Replay the delta against the local disk, then the node is synchronized.
      const SimTime replay =
          SecToSim(static_cast<double>(config_.replay_bytes) / config_.client_disk_Bps);
      queue().ScheduleAfter(replay, [this] {
        metrics().RecordCompletion(self(), now());
        if (metrics().completed() >= metrics().num_nodes() - 1) {
          net().Stop();
        }
      });
      return;
    }
    default:
      return;
  }
}

}  // namespace bullet
