// Flow-level TCP throughput model.
//
// The emulator shares link bandwidth among flows with max-min fairness, but real TCP
// cannot always use its fair share. Two effects from the paper's experiments matter:
//
//  1. Loss-limited steady state. Under random loss p a single TCP flow's throughput
//     is capped near the Mathis formula MSS / (RTT * sqrt(2p/3)). This is why more
//     peers (= more flows) make a Bullet' node's inbound bandwidth resilient to loss
//     (Fig. 7) and why requesting far more than the pipe needs is cheap insurance in
//     lossless settings but costly in dynamic ones (Figs. 10-12).
//
//  2. Slow-start ramp. A freshly active (or long-idle) connection takes several RTTs
//     to fill its pipe, which is what penalizes systems that constantly re-open
//     connections ("MACEDON TCP feasible + startup" line of Fig. 4).
//
// TcpFlowState tracks per-direction activity; RateCapBps combines both effects.

#ifndef SRC_SIM_TCP_MODEL_H_
#define SRC_SIM_TCP_MODEL_H_

#include "src/sim/time.h"

namespace bullet {

struct TcpModelParams {
  double mss_bytes = 1460.0;
  // Idle period after which the congestion window collapses back to slow start.
  SimTime idle_restart = MsToSim(1000);
  // Initial window in segments (RFC 3390-era value; the paper predates IW10).
  double initial_window_segments = 3.0;
};

struct TcpFlowState {
  // When the current busy period began (for the slow-start ramp).
  SimTime active_since = 0;
  // When the direction last had bytes to send.
  SimTime last_busy = 0;
  bool ever_active = false;

  // Called when a direction transitions idle -> busy.
  void OnBecameActive(SimTime now, const TcpModelParams& params);
};

// Upper bound on this flow's rate (bits/second) given path RTT, path loss, and how
// long it has been continuously active. Returns a very large number when unlimited.
double TcpRateCapBps(const TcpFlowState& state, SimTime now, SimTime rtt, double loss,
                     const TcpModelParams& params);

// As TcpRateCapBps, but additionally reports whether the cap has reached its
// steady state: once the slow-start ramp meets the loss/clamp ceiling (or the
// doubling count saturates), the cap is a constant for the rest of the busy
// period, so callers may cache it instead of recomputing per quantum. The
// returned value is bit-identical to TcpRateCapBps (same operation sequence);
// the network's incremental tick relies on that for reproducibility.
double TcpRateCapDetail(const TcpFlowState& state, SimTime now, SimTime rtt, double loss,
                        const TcpModelParams& params, bool* steady);

// Steady-state Mathis cap alone (bits/second); infinite when loss == 0.
double MathisCapBps(SimTime rtt, double loss, double mss_bytes);

}  // namespace bullet

#endif  // SRC_SIM_TCP_MODEL_H_
