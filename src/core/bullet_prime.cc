#include "src/core/bullet_prime.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/profiler.h"
#include "src/overlay/protocol_registry.h"

namespace bullet {

namespace {
// Senders that joined mid-epoch are excluded from trimming: their byte counts cover
// only part of the measurement window.
bool FullEpoch(SimTime connected_at, SimTime epoch_start) { return connected_at <= epoch_start; }
}  // namespace

BulletPrime::BulletPrime(const Context& ctx, const FileParams& file, NodeId source,
                         const ControlTree* tree, const BulletPrimeConfig& config)
    : TreeOverlayProtocol(ctx, file, source, tree, RanSubAgent::Config{}),
      config_(config),
      senders_(ctx.net->arena_counter()),
      rarity_(file.BlockSpace(), 0),
      receivers_(ctx.net->arena_counter()) {
  max_senders_ = config_.initial_senders;
  max_receivers_ = config_.initial_receivers;
  sender_adapt_.max_peers = max_senders_;
  receiver_adapt_.max_peers = max_receivers_;
}

void BulletPrime::Start() {
  TreeOverlayProtocol::Start();
  if (is_source()) {
    push_scheduled_ = true;
    // Give children a moment to establish their tree connections.
    queue().ScheduleAfter(SecToSim(1.0), [this] { SourcePushTick(); });
  } else if (stream() != nullptr) {
    // Streaming mode: the sliding window opens as positions are played and as
    // the source releases new ones — neither necessarily coincides with an
    // arrival from the sender holding the block, so re-issue periodically.
    queue().ScheduleAfter(stream()->block_duration(), [this] { StreamRequestTick(); });
  }
}

void BulletPrime::StreamRequestTick() {
  if (complete() || net().queue().stopped()) {
    return;
  }
  for (auto& [conn, s] : senders_) {
    IssueRequests(s);
  }
  queue().ScheduleAfter(stream()->block_duration(), [this] { StreamRequestTick(); });
}

int BulletPrime::num_senders() const {
  int n = 0;
  for (const auto& [conn, s] : senders_) {
    if (s.active) {
      ++n;
    }
  }
  return n;
}

int BulletPrime::outstanding_to(NodeId sender) const {
  for (const auto& [conn, s] : senders_) {
    if (s.node == sender) {
      return s.outstanding;
    }
  }
  return -1;
}

std::vector<BulletPrime::SenderDebug> BulletPrime::DebugSenders() const {
  std::vector<SenderDebug> out;
  for (const auto& [conn, s] : senders_) {
    SenderDebug d;
    d.node = s.node;
    d.active = s.active;
    d.has_count = s.has.count();
    d.raw_candidates = s.candidates.RawSize();
    for (const uint32_t id : s.has.SetBits()) {
      if (!have_.Test(id) && requested_.find(id) == requested_.end()) {
        ++d.valid_candidates;
      }
    }
    d.outstanding = s.outstanding;
    d.desired = s.desired;
    d.diff_request_inflight = s.diff_request_inflight;
    out.push_back(d);
  }
  return out;
}

double BulletPrime::desired_outstanding(NodeId sender) const {
  for (const auto& [conn, s] : senders_) {
    if (s.node == sender) {
      return s.desired;
    }
  }
  return -1.0;
}

PeerSummary BulletPrime::MakeSummary() {
  PeerSummary s = TreeOverlayProtocol::MakeSummary();
  if (is_source() && !push_done_) {
    // The source only advertises itself once every block has been sent into the
    // overlay at least once (Section 3.3.5).
    s.block_count = 0;
    s.sketch_bits = 0;
  }
  s.incoming_mbps = static_cast<float>(incoming_total_Bps_.value() * 8.0 / 1e6);
  return s;
}

// ---------------------------------------------------------------------------
// Source push (Section 3.3.5)
// ---------------------------------------------------------------------------

void BulletPrime::SourcePushTick() {
  const auto& kids = tree_children();
  const uint32_t total = file_.encoded ? file_.BlockSpace() : file_.num_blocks;
  // Streaming mode: the source releases blocks at the stream bitrate (the live
  // edge) instead of blasting the whole file as fast as children drain.
  const uint32_t released =
      stream_ == nullptr
          ? total
          : static_cast<uint32_t>(std::min<uint64_t>(total, stream_->BlocksReleasable(now())));
  if (!kids.empty()) {
    while (next_push_block_ < released) {
      bool sent = false;
      const size_t start = config_.source_random_push
                               ? static_cast<size_t>(rng().UniformInt(
                                     0, static_cast<int64_t>(kids.size()) - 1))
                               : next_push_child_;
      for (size_t i = 0; i < kids.size(); ++i) {
        const size_t idx = (start + i) % kids.size();
        const ConnId conn = ChildConn(kids[idx]);
        if (conn < 0) {
          continue;
        }
        // Never force a block on a busy child; try the next one round-robin.
        if (net().QueuedBytes(conn, self()) >=
            config_.source_child_queue_blocks * file_.block_bytes) {
          continue;
        }
        auto msg = std::make_unique<bp::BlockMsg>();
        msg->block_id = next_push_block_;
        msg->pushed = true;
        msg->Finalize(file_.block_bytes);
        net().Send(conn, self(), std::move(msg));
        if (file_.encoded) {
          // Encoded mode: the source mints fresh encoded blocks as it goes.
          have_.Set(next_push_block_);
          sketch_.AddBlock(next_push_block_);
        }
        next_push_child_ = (idx + 1) % kids.size();
        ++next_push_block_;
        sent = true;
        break;
      }
      if (!sent) {
        break;
      }
      if (!push_done_ && next_push_block_ >= file_.num_blocks) {
        push_done_ = true;  // One full pass done; start advertising in RanSub.
      }
    }
  }
  if (next_push_block_ < total) {
    queue().ScheduleAfter(config_.source_push_retry, [this] { SourcePushTick(); });
  } else {
    push_done_ = true;
    push_scheduled_ = false;
  }
}

// ---------------------------------------------------------------------------
// RanSub epochs: peer-set management (Section 3.3.1)
// ---------------------------------------------------------------------------

void BulletPrime::OnRanSubEpoch(const std::vector<PeerSummary>& subset) {
  const double epoch_sec = std::max(SimToSec(now() - last_epoch_at_), 0.5);

  int64_t in_bytes = 0;
  for (const auto& [conn, s] : senders_) {
    in_bytes += s.epoch_bytes;
  }
  incoming_total_Bps_.Add(static_cast<double>(in_bytes) / epoch_sec);

  if (!is_source() && !complete()) {
    ManageSenderSet(epoch_sec, subset);
  }
  ManageReceiverSet(epoch_sec);

  for (auto& [conn, s] : senders_) {
    s.epoch_bytes = 0;
  }
  for (auto& [conn, r] : receivers_) {
    r.epoch_bytes = 0;
  }
  last_epoch_at_ = now();
}

void BulletPrime::ManageSenderSet(double epoch_sec, const std::vector<PeerSummary>& subset) {
  const double in_bps = [&] {
    int64_t bytes = 0;
    for (const auto& [conn, s] : senders_) {
      bytes += s.epoch_bytes;
    }
    return static_cast<double>(bytes) * 8.0 / epoch_sec;
  }();

  if (config_.dynamic_peer_sets) {
    max_senders_ =
        ManageMaxPeers(sender_adapt_, num_senders(), in_bps, config_.min_peers, config_.max_peers);

    // 1.5-sigma trim on bandwidth received per sender.
    std::vector<ConnId> trim_conns;
    std::vector<double> metric;
    for (const auto& [conn, s] : senders_) {
      if (s.active && FullEpoch(s.connected_at, last_epoch_at_)) {
        trim_conns.push_back(conn);
        metric.push_back(static_cast<double>(s.epoch_bytes));
      }
    }
    for (const size_t i :
         TrimIndices(metric, config_.trim_stddevs, static_cast<size_t>(config_.min_peers))) {
      auto it = senders_.find(trim_conns[i]);
      if (it != senders_.end()) {
        DisconnectSender(it->first, it->second);
      }
    }

    // If the hill-climber lowered MAX below the current set size, shed the slowest.
    while (num_senders() > max_senders_ && num_senders() > config_.min_peers) {
      ConnId worst = -1;
      int64_t worst_bytes = INT64_MAX;
      for (const auto& [conn, s] : senders_) {
        if (s.active && s.epoch_bytes < worst_bytes) {
          worst_bytes = s.epoch_bytes;
          worst = conn;
        }
      }
      if (worst < 0) {
        break;
      }
      auto it = senders_.find(worst);
      DisconnectSender(it->first, it->second);
    }
  }

  // Fill toward MAX_SENDERS from the RanSub subset, best candidates first.
  const int want = max_senders_ - static_cast<int>(sender_nodes_.size());
  if (want <= 0) {
    return;
  }
  struct Scored {
    int64_t score;
    NodeId node;
  };
  std::vector<Scored> scored;
  for (const auto& peer : subset) {
    if (peer.node == self() || peer.node < 0 || peer.block_count == 0 ||
        sender_nodes_.count(peer.node) > 0) {
      continue;
    }
    AvailabilitySketch theirs;
    theirs.set_bits(peer.sketch_bits);
    const int novel = theirs.NovelBucketsVs(sketch_);
    scored.push_back(Scored{static_cast<int64_t>(novel) * 1000000 + peer.block_count, peer.node});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });
  for (int i = 0; i < want && i < static_cast<int>(scored.size()); ++i) {
    ConnectToSender(scored[static_cast<size_t>(i)].node);
  }
}

void BulletPrime::ManageReceiverSet(double epoch_sec) {
  if (!config_.dynamic_peer_sets || receivers_.empty()) {
    return;
  }
  int64_t out_bytes = 0;
  for (const auto& [conn, r] : receivers_) {
    out_bytes += r.epoch_bytes;
  }
  const double out_bps = static_cast<double>(out_bytes) * 8.0 / epoch_sec;
  max_receivers_ = ManageMaxPeers(receiver_adapt_, static_cast<int>(receivers_.size()), out_bps,
                                  config_.min_peers, config_.max_peers);

  // Trim receivers by the fraction of their total inbound bandwidth that we provide:
  // closing a low-ratio receiver barely hurts it, while freeing our uplink.
  std::vector<ConnId> trim_conns;
  std::vector<double> metric;
  for (const auto& [conn, r] : receivers_) {
    if (r.reported_total_in_bps > 0 && FullEpoch(r.connected_at, last_epoch_at_)) {
      const double our_bps = static_cast<double>(r.epoch_bytes) * 8.0 / epoch_sec;
      trim_conns.push_back(conn);
      metric.push_back(our_bps / r.reported_total_in_bps);
    }
  }
  for (const size_t i :
       TrimIndices(metric, config_.trim_stddevs, static_cast<size_t>(config_.min_peers))) {
    auto it = receivers_.find(trim_conns[i]);
    if (it != receivers_.end()) {
      net().Close(it->first);
      receivers_.erase(it);
    }
  }
  while (static_cast<int>(receivers_.size()) > max_receivers_ &&
         static_cast<int>(receivers_.size()) > config_.min_peers) {
    auto worst = receivers_.end();
    int64_t worst_bytes = INT64_MAX;
    for (auto it = receivers_.begin(); it != receivers_.end(); ++it) {
      if (it->second.epoch_bytes < worst_bytes) {
        worst_bytes = it->second.epoch_bytes;
        worst = it;
      }
    }
    if (worst == receivers_.end()) {
      break;
    }
    net().Close(worst->first);
    receivers_.erase(worst);
  }
}

// ---------------------------------------------------------------------------
// Peering connections
// ---------------------------------------------------------------------------

void BulletPrime::ConnectToSender(NodeId node) {
  const ConnId conn = net().Connect(self(), node);
  if (conn < 0) {
    return;
  }
  sender_nodes_.insert(node);
  Sender s;
  s.node = node;
  s.conn = conn;
  s.has.Resize(file_.BlockSpace());
  s.desired = config_.dynamic_outstanding ? config_.initial_outstanding
                                          : static_cast<double>(config_.fixed_outstanding);
  s.connected_at = now();
  senders_.emplace(conn, std::move(s));
}

void BulletPrime::OnPeerConnUp(ConnId conn, NodeId /*peer*/, bool initiator) {
  if (initiator) {
    auto it = senders_.find(conn);
    if (it != senders_.end()) {
      auto req = std::make_unique<bp::PeerRequestMsg>();
      AccountControlOut(req->wire_bytes);
      net().Send(conn, self(), std::move(req));
    }
  }
  // The acceptor side waits for the PeerRequest message.
}

void BulletPrime::OnPeerConnDown(ConnId conn, NodeId /*peer*/) {
  auto sit = senders_.find(conn);
  if (sit != senders_.end()) {
    // Undo availability accounting and requeue outstanding requests; skip Close
    // (the connection is already down).
    Sender& s = sit->second;
    for (const uint32_t id : s.has.SetBits()) {
      --rarity_[id];
    }
    std::vector<uint32_t> requeue;
    for (const auto& [block, c] : requested_) {
      if (c == conn) {
        requeue.push_back(block);
      }
    }
    for (const uint32_t id : requeue) {
      requested_.erase(id);
    }
    sender_nodes_.erase(s.node);
    senders_.erase(sit);
    for (const uint32_t id : requeue) {
      for (auto& [c2, s2] : senders_) {
        if (s2.has.Test(id)) {
          s2.candidates.Readd(id);
        }
      }
    }
    for (auto& [c2, s2] : senders_) {
      IssueRequests(s2);
    }
    return;
  }
  receivers_.erase(conn);
}

void BulletPrime::DisconnectSender(ConnId conn, Sender& s) {
  for (const uint32_t id : s.has.SetBits()) {
    --rarity_[id];
  }
  std::vector<uint32_t> requeue;
  for (const auto& [block, c] : requested_) {
    if (c == conn) {
      requeue.push_back(block);
    }
  }
  for (const uint32_t id : requeue) {
    requested_.erase(id);
  }
  sender_nodes_.erase(s.node);
  net().Close(conn);
  senders_.erase(conn);
  for (const uint32_t id : requeue) {
    for (auto& [c2, s2] : senders_) {
      if (s2.has.Test(id)) {
        s2.candidates.Readd(id);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void BulletPrime::OnProtocolMessage(ConnId conn, NodeId from, std::unique_ptr<Message> msg) {
  switch (msg->type) {
    case bp::PeerRequestMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      if (static_cast<int>(receivers_.size()) < std::min(max_receivers_, config_.max_peers)) {
        Receiver r;
        r.node = from;
        r.conn = conn;
        r.told.Resize(file_.BlockSpace());
        r.connected_at = now();
        auto [it, inserted] = receivers_.emplace(conn, std::move(r));
        auto accept = std::make_unique<bp::PeerAcceptMsg>();
        AccountControlOut(accept->wire_bytes);
        net().Send(conn, self(), std::move(accept));
        SendFullDiff(it->second);
      } else {
        auto reject = std::make_unique<bp::PeerRejectMsg>();
        AccountControlOut(reject->wire_bytes);
        net().Send(conn, self(), std::move(reject));
      }
      return;
    }
    case bp::PeerAcceptMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = senders_.find(conn);
      if (it != senders_.end()) {
        it->second.active = true;
      }
      return;
    }
    case bp::PeerRejectMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = senders_.find(conn);
      if (it != senders_.end()) {
        sender_nodes_.erase(it->second.node);
        senders_.erase(it);
      }
      net().Close(conn);
      return;
    }
    case bp::DiffMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = senders_.find(conn);
      if (it != senders_.end()) {
        Sender& s = it->second;
        s.diff_request_inflight = false;
        const auto& ids = static_cast<bp::DiffMsg&>(*msg).ids;
        if (ids.empty()) {
          s.diff_request_exhausted = true;  // wait for the sender to push news
        }
        HandleAvailability(s, ids);
        IssueRequests(s);
      }
      return;
    }
    case bp::DiffRequestMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      auto it = receivers_.find(conn);
      if (it != receivers_.end()) {
        SendFullDiff(it->second);
      }
      return;
    }
    case bp::BlockRequestMsg::kType: {
      AccountControlIn(msg->wire_bytes);
      OnBlockRequest(conn, static_cast<bp::BlockRequestMsg&>(*msg));
      return;
    }
    case bp::BlockMsg::kType: {
      OnBlockMsg(conn, from, static_cast<bp::BlockMsg&>(*msg));
      return;
    }
    default:
      return;
  }
}

void BulletPrime::HandleAvailability(Sender& s, const std::vector<uint32_t>& ids) {
  for (const uint32_t id : ids) {
    if (id >= file_.BlockSpace() || s.has.Test(id)) {
      continue;
    }
    s.has.Set(id);
    ++rarity_[id];
    s.diff_request_exhausted = false;  // the sender has something new again
    if (!have_.Test(id)) {
      s.candidates.Add(id);
    }
  }
}

int BulletPrime::OutstandingLimit(const Sender& s) const {
  if (!config_.dynamic_outstanding) {
    return config_.fixed_outstanding;
  }
  return static_cast<int>(std::floor(s.desired));
}

void BulletPrime::IssueRequests(Sender& s) {
  BULLET_PROFILE_SCOPE(ProfilePhase::kRequestStrategy);
  if (!s.active || complete()) {
    return;
  }
  const auto valid = [this](uint32_t id) {
    return !have_.Test(id) && requested_.find(id) == requested_.end();
  };
  const auto rarity = [this](uint32_t id) { return rarity_[id]; };
  // Streaming mode: only blocks inside the sliding playback window (and
  // already released at the source) are requestable; the configured strategy
  // applies within the window. Out-of-window candidates stay queued.
  const auto eligible = [this](uint32_t id) { return stream_->Eligible(id, now()); };
  const int limit = OutstandingLimit(s);
  while (s.outstanding < limit) {
    const auto pick =
        stream_ != nullptr
            ? s.candidates.PickWindowed(config_.request_strategy, valid, eligible, rarity, rng())
            : s.candidates.Pick(config_.request_strategy, valid, rarity, rng());
    if (!pick.has_value()) {
      break;
    }
    auto req = std::make_unique<bp::BlockRequestMsg>();
    req->block_id = *pick;
    req->receiver_total_in_bps = static_cast<float>(incoming_total_Bps_.value() * 8.0);
    if (config_.dynamic_outstanding && !s.mark_inflight) {
      req->marked = true;
      s.mark_inflight = true;
    }
    AccountControlOut(req->wire_bytes);
    requested_.emplace(*pick, s.conn);
    ++s.outstanding;
    net().Send(s.conn, self(), std::move(req));
  }
  // About to run dry on this sender: ask for a diff (Section 3.3.4). In
  // streaming mode "dry" means dry *within the window* — availability news may
  // unlock in-window blocks even while out-of-window candidates queue up.
  const auto dry_valid = [&](uint32_t id) {
    return valid(id) && (stream_ == nullptr || eligible(id));
  };
  if (!s.diff_request_inflight && !s.diff_request_exhausted &&
      s.candidates.RunningDry(static_cast<size_t>(limit) + 1, dry_valid)) {
    auto dreq = std::make_unique<bp::DiffRequestMsg>();
    AccountControlOut(dreq->wire_bytes);
    s.diff_request_inflight = true;
    net().Send(s.conn, self(), std::move(dreq));
  }
}

void BulletPrime::OnBlockRequest(ConnId conn, bp::BlockRequestMsg& msg) {
  auto it = receivers_.find(conn);
  if (it == receivers_.end()) {
    return;
  }
  Receiver& r = it->second;
  r.reported_total_in_bps = msg.receiver_total_in_bps;
  r.told.Set(msg.block_id);
  ServeBlock(r, msg.block_id, msg.marked);
}

void BulletPrime::ServeBlock(Receiver& r, uint32_t id, bool marked) {
  if (!have_.Test(id)) {
    return;  // We never advertised it; ignore.
  }
  // Flow-control measurements for the receiver (Section 3.3.3): how many blocks sit
  // in front of the socket buffer, and whether the pipe had gone idle (wasted < 0)
  // or the request will wait in the queue (wasted > 0).
  const int64_t queued = net().QueuedBytes(r.conn, self());
  const double in_front =
      static_cast<double>(queued) / static_cast<double>(file_.block_bytes);
  double wasted_sec = 0.0;
  if (queued == 0) {
    wasted_sec = -SimToSec(net().IdleTime(r.conn, self()));
  } else {
    const double rate_bps = net().CurrentRateBps(r.conn, self());
    wasted_sec = rate_bps > 1.0 ? static_cast<double>(queued) * 8.0 / rate_bps : 0.0;
  }

  auto block = std::make_unique<bp::BlockMsg>();
  block->block_id = id;
  block->marked = marked;
  block->in_front = static_cast<float>(in_front);
  block->wasted_sec = static_cast<float>(wasted_sec);
  // Piggyback availability news the receiver has not heard about yet.
  for (const uint32_t news_id : have_.DiffFrom(r.told)) {
    if (static_cast<int>(block->news.size()) >= config_.piggyback_limit) {
      break;
    }
    block->news.push_back(news_id);
    r.told.Set(news_id);
  }
  block->Finalize(file_.block_bytes);
  r.epoch_bytes += block->wire_bytes;
  net().Send(r.conn, self(), std::move(block));
}

void BulletPrime::OnBlockMsg(ConnId conn, NodeId /*from*/, bp::BlockMsg& msg) {
  auto it = senders_.find(conn);
  if (it == senders_.end()) {
    // Pushed block from the source on the control tree (or a late delivery from a
    // closed peering). Still useful data.
    const bool fresh = AcceptBlock(msg.block_id, msg.wire_bytes);
    if (fresh) {
      MarkReceiversDirtyOnNewBlock();
    }
    return;
  }
  Sender& s = it->second;
  s.outstanding = std::max(0, s.outstanding - 1);
  requested_.erase(msg.block_id);
  s.epoch_bytes += msg.wire_bytes;
  s.last_arrival = now();

  const bool fresh = AcceptBlock(msg.block_id, msg.wire_bytes);
  if (fresh) {
    MarkReceiversDirtyOnNewBlock();
  }
  if (complete()) {
    return;  // OnFileComplete() disconnected every sender; `s` is gone.
  }
  HandleAvailability(s, msg.news);

  if (msg.marked) {
    s.mark_inflight = false;
    if (config_.dynamic_outstanding) {
      const double window_sec =
          std::max(SimToSec(now() - std::max(last_epoch_at_, s.connected_at)), 0.25);
      const double bw_Bps = static_cast<double>(s.epoch_bytes) / window_sec;
      OutstandingParams params;
      params.alpha = config_.xcp_alpha;
      params.beta = config_.xcp_beta;
      // "requested" in the Fig. 3 pseudocode counts requests not yet queued for
      // service at the sender: blocks already sitting in front of the socket buffer
      // are subtracted, which is what makes `desired = requested + 1` converge on
      // the stated goal of exactly one block in front.
      const double requested =
          std::max(0.0, static_cast<double>(s.outstanding) + 1.0 - msg.in_front);
      s.desired = ManageOutstanding(requested, msg.in_front, msg.wasted_sec, bw_Bps,
                                    static_cast<double>(file_.block_bytes), params);
    }
  }
  if (!complete()) {
    IssueRequests(s);
  }
}

// ---------------------------------------------------------------------------
// Diff sending (Section 3.3.4)
// ---------------------------------------------------------------------------

void BulletPrime::SendFullDiff(Receiver& r) {
  auto diff = std::make_unique<bp::DiffMsg>();
  diff->ids = have_.DiffFrom(r.told);
  for (const uint32_t id : diff->ids) {
    r.told.Set(id);
  }
  diff->Finalize(file_.BlockSpace());
  AccountControlOut(diff->wire_bytes);
  r.diff_dirty = false;
  net().Send(r.conn, self(), std::move(diff));
}

void BulletPrime::MarkReceiversDirtyOnNewBlock() {
  bool any = false;
  for (auto& [conn, r] : receivers_) {
    if (net().QueuedBytes(conn, self()) == 0) {
      r.diff_dirty = true;
      any = true;
    }
  }
  if (any && !diff_flush_scheduled_) {
    diff_flush_scheduled_ = true;
    queue().ScheduleAfter(config_.diff_flush_delay, [this] { FlushDirtyDiffs(); });
  }
}

void BulletPrime::FlushDirtyDiffs() {
  diff_flush_scheduled_ = false;
  for (auto& [conn, r] : receivers_) {
    if (r.diff_dirty) {
      SendFullDiff(r);
    }
  }
}

void BulletPrime::OnFileComplete() {
  // Stop downloading; keep serving (the paper assumes cooperative nodes stay).
  std::vector<ConnId> conns;
  conns.reserve(senders_.size());
  for (const auto& [conn, s] : senders_) {
    conns.push_back(conn);
  }
  for (const ConnId conn : conns) {
    auto it = senders_.find(conn);
    if (it != senders_.end()) {
      DisconnectSender(it->first, it->second);
    }
  }
}

double BulletPrime::TotalIncomingBps() const { return incoming_total_Bps_.value() * 8.0; }

namespace {

// Pulls the session's BulletPrimeConfig out of the spec, defaulting when the
// caller supplied none. The harness validated the type against the registry's
// config_type at AddSession, so a non-empty any always holds this type.
BulletPrimeConfig ResolveBulletPrimeConfig(const SessionSpec& spec) {
  if (const auto* config = std::any_cast<BulletPrimeConfig>(&spec.protocol_config)) {
    return *config;
  }
  return BulletPrimeConfig{};
}

}  // namespace

void RegisterBulletPrimeProtocol() {
  ProtocolRegistry::Entry entry;
  entry.key = "bullet-prime";
  entry.display_name = "BulletPrime";
  entry.description = "Bullet' (Section 3): adaptive mesh over RanSub with the paper's "
                      "peer-set and outstanding-request controllers";
  entry.encoded_stream = false;
  entry.config_type = &typeid(BulletPrimeConfig);
  entry.make = [](const ProtocolRegistry::SessionEnv& env) -> ProtocolRegistry::NodeFactory {
    const BulletPrimeConfig config = ResolveBulletPrimeConfig(*env.spec);
    const FileParams file = env.spec->file;
    const NodeId source = env.spec->source;
    const ControlTree* tree = env.tree;
    const std::optional<StreamingSpec> streaming = env.spec->streaming;
    const SimTime session_start = env.spec->start;
    return [config, file, source, tree, streaming, session_start](const Protocol::Context& ctx) {
      auto p = std::make_unique<BulletPrime>(ctx, file, source, tree, config);
      if (streaming.has_value()) {
        p->ConfigureStreaming(*streaming, session_start);
      }
      return std::unique_ptr<Protocol>(std::move(p));
    };
  };
  ProtocolRegistry::Global().Register(std::move(entry));
}

}  // namespace bullet
