#include <gtest/gtest.h>

#include <set>

#include "src/common/hash.h"
#include "src/common/sketch.h"

namespace bullet {
namespace {

TEST(Hash, Fnv1aDeterministic) {
  const std::string s = "hello world";
  EXPECT_EQ(Fnv1a64(s), Fnv1a64(s.data(), s.size()));
  EXPECT_NE(Fnv1a64(std::string("a")), Fnv1a64(std::string("b")));
}

TEST(Hash, Fnv1aEmpty) {
  // FNV-1a offset basis for empty input.
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
}

TEST(Hash, Mix64Bijective) {
  // Distinct inputs map to distinct outputs over a small sweep (Mix64 is a
  // bijection, so collisions indicate a bug).
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    seen.insert(Mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Hash, StrongDigestDiscriminates) {
  const std::string a = "The quick brown fox jumps over the lazy dog";
  std::string b = a;
  b[10] ^= 1;
  EXPECT_TRUE(StrongDigest(a.data(), a.size()) == StrongDigest(a.data(), a.size()));
  EXPECT_FALSE(StrongDigest(a.data(), a.size()) == StrongDigest(b.data(), b.size()));
}

TEST(Hash, StrongDigestLengthSensitive) {
  const std::string a = "aaaa";
  EXPECT_FALSE(StrongDigest(a.data(), 4) == StrongDigest(a.data(), 3));
}

TEST(Sketch, EmptyHasNoBits) {
  AvailabilitySketch s;
  EXPECT_EQ(s.bits(), 0u);
}

TEST(Sketch, AddSetsBits) {
  AvailabilitySketch s;
  s.AddBlock(7);
  EXPECT_NE(s.bits(), 0u);
  const uint64_t after_one = s.bits();
  s.AddBlock(7);
  EXPECT_EQ(s.bits(), after_one);  // idempotent
}

TEST(Sketch, FromBitmapMatchesIncremental) {
  Bitmap bm(256);
  AvailabilitySketch incremental;
  for (uint32_t i = 0; i < 256; i += 7) {
    bm.Set(i);
    incremental.AddBlock(i);
  }
  EXPECT_EQ(AvailabilitySketch::FromBitmap(bm).bits(), incremental.bits());
}

TEST(Sketch, NovelBuckets) {
  AvailabilitySketch mine;
  AvailabilitySketch theirs;
  for (uint32_t i = 0; i < 8; ++i) {
    mine.AddBlock(i);
    theirs.AddBlock(i);
  }
  EXPECT_EQ(theirs.NovelBucketsVs(mine), 0);
  // A peer with many more blocks covers buckets we lack.
  for (uint32_t i = 8; i < 200; ++i) {
    theirs.AddBlock(i);
  }
  EXPECT_GT(theirs.NovelBucketsVs(mine), 0);
  // Novelty is asymmetric.
  EXPECT_EQ(mine.NovelBucketsVs(theirs), 0);
}

}  // namespace
}  // namespace bullet
