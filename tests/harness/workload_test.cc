// Session/workload harness coverage: the protocol registry, spec validation,
// legacy-wrapper equivalence (the single-session Experiment must be a thin
// wrapper over WorkloadExperiment, bit for bit), staggered joins, and the
// per-session completion contract — session A completing never stops session B.

#include "src/harness/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/core/bullet_prime.h"
#include "src/harness/experiment.h"
#include "src/harness/scenarios.h"
#include "src/harness/workload_gen.h"
#include "src/overlay/protocol_registry.h"

namespace bullet {
namespace {

// Small uniform mesh: generous symmetric links keep these runs fast and make
// completion ordering depend on file size, not topology luck.
std::unique_ptr<Topology> SmallUniform(int nodes, uint64_t seed) {
  Rng rng(seed);
  return std::make_unique<MeshTopology>(
      MeshTopology::Uniform(nodes, 10e6, MsToSim(20), 0.0, 0.0, rng));
}

FileParams SmallFile(uint32_t blocks) {
  FileParams file;
  file.block_bytes = 16 * 1024;
  file.num_blocks = blocks;
  return file;
}

TEST(ProtocolRegistry, BuiltinSystemsAreRegistered) {
  EnsureBuiltinProtocolsRegistered();
  const ProtocolRegistry& registry = ProtocolRegistry::Global();
  ASSERT_GE(registry.size(), 4u);
  const ProtocolRegistry::Entry* bp = registry.Find("bullet-prime");
  ASSERT_NE(bp, nullptr);
  EXPECT_EQ(bp->display_name, "BulletPrime");
  EXPECT_FALSE(bp->encoded_stream);
  const ProtocolRegistry::Entry* legacy = registry.Find("bullet");
  ASSERT_NE(legacy, nullptr);
  EXPECT_EQ(legacy->display_name, "Bullet");
  EXPECT_TRUE(legacy->encoded_stream);
  ASSERT_NE(registry.Find("bittorrent"), nullptr);
  const ProtocolRegistry::Entry* ss = registry.Find("splitstream");
  ASSERT_NE(ss, nullptr);
  EXPECT_TRUE(ss->encoded_stream);
  EXPECT_EQ(registry.Find("no-such-protocol"), nullptr);
}

TEST(ProtocolRegistry, DuplicateKeyIsRejected) {
  EnsureBuiltinProtocolsRegistered();
  ProtocolRegistry::Entry dup;
  dup.key = "bullet-prime";
  dup.display_name = "X";
  dup.make = [](const ProtocolRegistry::SessionEnv&) -> ProtocolRegistry::NodeFactory {
    return nullptr;
  };
  EXPECT_FALSE(ProtocolRegistry::Global().Register(std::move(dup)));
  EXPECT_EQ(ProtocolRegistry::Global().Find("bullet-prime")->display_name, "BulletPrime");
}

// The legacy Experiment and a registry-driven WorkloadExperiment session with
// the same (dense members, zero offsets) shape must produce bitwise-identical
// completions: the wrapper claim is exact, not approximate.
TEST(WorkloadExperiment, LegacyExperimentIsAThinWrapper) {
  ExperimentParams params;
  params.seed = 5151;
  params.file = SmallFile(24);
  params.deadline = SecToSim(600.0);

  Experiment legacy(SmallUniform(10, 42), params);
  const RunMetrics legacy_metrics =
      legacy.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
        return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree,
                                             BulletPrimeConfig{});
      });

  WorkloadParams wl_params;
  wl_params.seed = params.seed;
  wl_params.deadline = params.deadline;
  WorkloadExperiment wl(SmallUniform(10, 42), wl_params);
  SessionSpec spec;
  spec.protocol = "bullet-prime";
  spec.file = params.file;
  spec.seed = params.seed;
  // Explicit dense members: must be recognized as the legacy shape.
  for (NodeId n = 0; n < 10; ++n) {
    spec.members.push_back(n);
  }
  wl.AddSession(spec);
  const WorkloadResult result = wl.Run();

  const std::vector<double> legacy_completions =
      legacy_metrics.CompletionSeconds(0, SimToSec(params.deadline));
  ASSERT_EQ(result.sessions.size(), 1u);
  ASSERT_EQ(result.sessions[0].completion_sec.size(), legacy_completions.size());
  for (size_t i = 0; i < legacy_completions.size(); ++i) {
    EXPECT_EQ(result.sessions[0].completion_sec[i], legacy_completions[i]) << "receiver " << i;
  }
  EXPECT_EQ(result.sessions[0].completed, legacy_metrics.completed());
  EXPECT_EQ(result.sessions[0].name, "BulletPrime");
}

// The heart of the per-session completion redesign: a fast session finishing
// must leave a slower concurrent session running to its own completion. Under
// the old rule (stop the network at num_nodes()-1 completions) session A's
// finish — or A+B together reaching the global receiver count — would have
// frozen B mid-transfer.
TEST(WorkloadExperiment, SessionACompletingNeverStopsSessionB) {
  WorkloadParams params;
  params.seed = 99;
  params.deadline = SecToSim(3600.0);
  WorkloadExperiment wl(SmallUniform(12, 7), params);

  SessionSpec a;
  a.name = "A";
  a.protocol = "bullet-prime";
  a.file = SmallFile(8);  // small file: finishes first
  a.members = {0, 2, 4, 6, 8, 10};
  a.source = 0;
  wl.AddSession(a);

  SessionSpec b;
  b.name = "B";
  b.protocol = "bullet-prime";
  b.file = SmallFile(64);  // 8x the bytes: still transferring when A is done
  b.members = {1, 3, 5, 7, 9, 11};
  b.source = 1;
  wl.AddSession(b);

  const WorkloadResult result = wl.Run();
  ASSERT_EQ(result.sessions.size(), 2u);
  const SessionResult& ra = result.sessions[0];
  const SessionResult& rb = result.sessions[1];
  // Both sessions ran to full completion.
  EXPECT_EQ(result.sessions_completed, 2);
  EXPECT_EQ(ra.completed, ra.receivers);
  EXPECT_EQ(rb.completed, rb.receivers) << "session B was cut off by session A completing";
  ASSERT_GE(ra.completed_at_sec, 0.0);
  ASSERT_GE(rb.completed_at_sec, 0.0);
  // And A genuinely finished first, so B's completions happened after A ended.
  EXPECT_LT(ra.completed_at_sec, rb.completed_at_sec);
  const double b_max = *std::max_element(rb.completion_sec.begin(), rb.completion_sec.end());
  EXPECT_GT(b_max, ra.completed_at_sec);
}

TEST(WorkloadExperiment, StaggeredJoinersCompleteAfterTheirJoinTime) {
  WorkloadParams params;
  params.seed = 1234;
  params.deadline = SecToSim(3600.0);
  WorkloadExperiment wl(SmallUniform(12, 9), params);

  SessionSpec spec;
  spec.protocol = "bullet-prime";
  spec.file = SmallFile(16);
  const double join_sec = 20.0;
  for (NodeId n = 0; n < 12; ++n) {
    spec.members.push_back(n);
    spec.join_offsets.push_back(n >= 6 ? SecToSim(join_sec) : 0);
  }
  wl.AddSession(spec);
  const WorkloadResult result = wl.Run();

  const SessionResult& r = result.sessions[0];
  EXPECT_EQ(r.completed, r.receivers);
  EXPECT_EQ(wl.session_join_time(0, 3), 0);
  EXPECT_EQ(wl.session_join_time(0, 9), SecToSim(join_sec));
  // completion_sec is member-ordered with the source excluded: entries 5..10
  // are the late cohort (nodes 6..11).
  ASSERT_EQ(r.completion_sec.size(), 11u);
  for (size_t i = 5; i < r.completion_sec.size(); ++i) {
    EXPECT_GT(r.completion_sec[i], join_sec) << "late joiner completed before joining";
    EXPECT_NEAR(r.download_sec[i], r.completion_sec[i] - join_sec, 1e-12);
  }
  // The staged tree only hangs late joiners under parents that joined no later.
  const ControlTree& tree = wl.session_tree(0);
  for (NodeId n = 1; n < 12; ++n) {
    const NodeId p = tree.parent[static_cast<size_t>(n)];
    ASSERT_GE(p, 0);
    EXPECT_LE(wl.session_join_time(0, p), wl.session_join_time(0, n));
  }
}

TEST(WorkloadExperiment, InvalidSpecsDie) {
  WorkloadParams params;
  // Each case sets the spec up outside EXPECT_DEATH (brace-initializers carry
  // commas the macro would split on) and dies inside AddSession.
  {
    WorkloadExperiment wl(SmallUniform(8, 3), params);
    SessionSpec s;
    s.protocol = "no-such-protocol";
    EXPECT_DEATH(wl.AddSession(s), "unknown protocol");
  }
  {
    WorkloadExperiment wl(SmallUniform(8, 3), params);
    SessionSpec s;
    s.members = {1, 2, 3};
    s.source = 0;
    EXPECT_DEATH(wl.AddSession(s), "source must be a session member");
  }
  {
    WorkloadExperiment wl(SmallUniform(8, 3), params);
    SessionSpec a;
    a.members = {0, 1, 2, 3};
    wl.AddSession(a);
    SessionSpec b;
    b.members = {3, 4, 5};
    b.source = 3;
    EXPECT_DEATH(wl.AddSession(b), "disjoint");
  }
  {
    WorkloadExperiment wl(SmallUniform(8, 3), params);
    SessionSpec s;
    s.members = {0, 1, 2};
    s.join_offsets = {0, 0};
    EXPECT_DEATH(wl.AddSession(s), "parallel");
  }
  {
    WorkloadExperiment wl(SmallUniform(8, 3), params);
    SessionSpec s;
    s.members = {0, 1, 2};
    s.join_offsets = {SecToSim(5.0), 0, 0};
    EXPECT_DEATH(wl.AddSession(s), "source must join no later");
  }
  {
    WorkloadExperiment wl(SmallUniform(8, 3), params);
    SessionSpec s;
    s.members = {0};
    EXPECT_DEATH(wl.AddSession(s), "at least one receiver");
  }
}

TEST(WorkloadExperiment, GeneratorSpecsDie) {
  WorkloadParams params;
  {
    // An arrivals generator and an explicit join schedule are two sources of
    // truth for the same thing.
    WorkloadExperiment wl(SmallUniform(8, 3), params);
    SessionSpec s;
    s.members = {0, 1, 2};
    s.join_offsets = {0, 0, 0};
    s.arrivals = std::make_shared<FixedOffsetArrivals>(0);
    EXPECT_DEATH(wl.AddSession(s), "mutually exclusive");
  }
  {
    // protocol_config's std::any is validated against the registry entry's
    // declared config type at resolution, not at first use deep in a factory.
    WorkloadExperiment wl(SmallUniform(8, 3), params);
    SessionSpec s;
    s.protocol = "bullet-prime";
    s.members = {0, 1, 2};
    s.protocol_config = 42;  // an int is not a BulletPrimeConfig
    EXPECT_DEATH(wl.AddSession(s), "wrong type");
  }
}

TEST(WorkloadExperiment, LifetimeExpiryDepartsReceiversAndStillTerminates) {
  WorkloadParams params;
  params.seed = 77;
  params.deadline = SecToSim(3600.0);
  WorkloadExperiment wl(SmallUniform(8, 3), params);

  SessionSpec spec;
  spec.protocol = "bullet-prime";
  spec.file = SmallFile(64);
  // A 2-second Pareto floor with a heavy tail: most receivers expire long
  // before the transfer can finish, which must not hang the session.
  spec.lifetimes = std::make_shared<ParetoLifetime>(1.2, SecToSim(2.0));
  wl.AddSession(spec);
  const WorkloadResult result = wl.Run();

  const SessionResult& r = result.sessions[0];
  EXPECT_GT(r.departed, 0);
  EXPECT_EQ(r.departed, result.total_departures);
  EXPECT_GT(r.departed_incomplete, 0);
  // Departed-incomplete receivers are credited by the completion policy, so
  // the session closes out (far before the one-hour deadline) instead of
  // waiting forever for receivers that already left.
  EXPECT_GE(r.completed_at_sec, 0.0);
  EXPECT_LT(r.completed_at_sec, 600.0);
  EXPECT_EQ(r.completed + r.departed_incomplete, r.receivers);
}

TEST(WorkloadExperiment, SeederDepartureDrainsCompletedReceivers) {
  WorkloadParams params;
  params.seed = 91;
  params.deadline = SecToSim(3600.0);
  WorkloadExperiment wl(SmallUniform(8, 3), params);

  SessionSpec spec;
  spec.protocol = "bullet-prime";
  spec.file = SmallFile(16);
  // Half the members join 30s late, so the early cohort completes, lingers 1s,
  // and departs while the sim is still running for the late cohort (departure
  // events landing after the last completion never fire — the run is over).
  for (NodeId n = 0; n < 8; ++n) {
    spec.members.push_back(n);
    spec.join_offsets.push_back(n >= 4 ? SecToSim(30.0) : 0);
  }
  spec.lifetimes = std::make_shared<SeederDepartureLifetime>(SecToSim(1.0));
  wl.AddSession(spec);
  const WorkloadResult result = wl.Run();

  const SessionResult& r = result.sessions[0];
  // Everyone completes (lifetimes are infinite until completion); the early
  // cohort additionally departs after its linger.
  EXPECT_EQ(r.completed, r.receivers);
  EXPECT_GE(r.departed, 3);
  EXPECT_EQ(r.departed_incomplete, 0);
}

TEST(WorkloadExperiment, ChurnModelDeparturesAreRecorded) {
  WorkloadParams params;
  params.seed = 55;
  params.deadline = SecToSim(3600.0);
  WorkloadExperiment wl(SmallUniform(10, 3), params);

  SessionSpec spec;
  spec.protocol = "bullet-prime";
  spec.file = SmallFile(64);
  wl.AddSession(spec);
  // Kills packed into the first two sim-seconds, well inside the transfer.
  wl.SetChurnModel(std::make_shared<LeafFailureChurn>(3, SecToSim(0.5), SecToSim(0.5)));
  const WorkloadResult result = wl.Run();

  ASSERT_EQ(result.churn_events.size(), 3u);
  for (const ChurnEvent& ev : result.churn_events) {
    EXPECT_NE(ev.node, 0);  // churn models never kill a source
    EXPECT_GT(ev.at, 0);
  }
  EXPECT_EQ(result.sessions[0].departed, 3);
  EXPECT_EQ(result.total_departures, 3);
  EXPECT_EQ(result.sessions[0].completed + result.sessions[0].departed_incomplete,
            result.sessions[0].receivers);
}

// Encoded-stream methodology comes from the registry entry, exactly like the
// old hard-coded system checks in RunScenario.
TEST(RunScenarioByName, EncodedStreamFollowsRegistryEntry) {
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kUniform;
  cfg.num_nodes = 6;
  cfg.file_mb = 0.25;
  cfg.seed = 707;
  cfg.deadline = SecToSim(1200.0);

  const ScenarioResult legacy_bullet = RunScenario("bullet", cfg);
  EXPECT_EQ(legacy_bullet.name, "Bullet");
  EXPECT_EQ(legacy_bullet.completed, legacy_bullet.receivers);
}

}  // namespace
}  // namespace bullet
