// Fig. 10: per-peer outstanding-request windows (3/6/9/15/50 fixed vs dynamic) with
// neither bandwidth changes nor losses: 25 participants on uniform 10 Mbps / 100 ms
// links, 8 KB blocks.
//
// Expected shape (paper): small fixed windows cannot fill the 10 Mbps * 200 ms RTT
// bandwidth-delay product (~31 blocks of 8 KB in flight across the request loop);
// the dynamic controller tracks the large-window configurations.

#include "bench/bench_util.h"

namespace bullet {
namespace {

void BM_Outstanding(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));  // 0 = dynamic
  ScenarioConfig cfg;
  cfg.topo = ScenarioConfig::Topo::kUniform;
  cfg.num_nodes = 25;
  cfg.file_mb = bench::ScaledFileMb(100.0);
  cfg.block_bytes = 8 * 1024;
  cfg.uniform_bps = 10e6;
  cfg.uniform_delay = MsToSim(100);
  cfg.loss_max = 0.0;
  cfg.seed = 1001;
  BulletPrimeConfig bp;
  // The paper runs this experiment with up to 5 senders and peer management off.
  bp.dynamic_peer_sets = false;
  bp.initial_senders = 5;
  bp.initial_receivers = 5;
  std::string name;
  if (window == 0) {
    name = "BulletPrime dyn outstanding";
  } else {
    bp.dynamic_outstanding = false;
    bp.fixed_outstanding = window;
    name = "BulletPrime " + std::to_string(window) + " outstanding";
  }
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(System::kBulletPrime, cfg, bp);
    bench::ReportCompletion(state, name, r);
  }
}
BENCHMARK(BM_Outstanding)
    ->Arg(50)
    ->Arg(0)
    ->Arg(15)
    ->Arg(9)
    ->Arg(6)
    ->Arg(3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Fig. 10 — outstanding windows, no losses, no bandwidth changes")
