#include "src/sim/bandwidth_allocator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"

namespace bullet {
namespace {

constexpr double kUnlimited = 1e12;

FlowSpec MakeFlow(int32_t a, int32_t b, int32_t c, double cap = kUnlimited) {
  FlowSpec f;
  f.links[0] = a;
  f.links[1] = b;
  f.links[2] = c;
  f.cap_bps = cap;
  return f;
}

TEST(Allocator, SingleFlowGetsLinkCapacity) {
  std::vector<FlowSpec> flows = {MakeFlow(0, -1, -1)};
  AllocateMaxMin(flows, {10e6});
  EXPECT_DOUBLE_EQ(flows[0].rate_bps, 10e6);
}

TEST(Allocator, FairShareOnSharedLink) {
  std::vector<FlowSpec> flows = {MakeFlow(0, -1, -1), MakeFlow(0, -1, -1), MakeFlow(0, -1, -1)};
  AllocateMaxMin(flows, {9e6});
  for (const auto& f : flows) {
    EXPECT_NEAR(f.rate_bps, 3e6, 1.0);
  }
}

TEST(Allocator, CapLimitedFlowReleasesShare) {
  // Flow 0 capped at 1 Mbps; flow 1 takes the remaining 9.
  std::vector<FlowSpec> flows = {MakeFlow(0, -1, -1, 1e6), MakeFlow(0, -1, -1)};
  AllocateMaxMin(flows, {10e6});
  EXPECT_NEAR(flows[0].rate_bps, 1e6, 1.0);
  EXPECT_NEAR(flows[1].rate_bps, 9e6, 1.0);
}

TEST(Allocator, BottleneckElsewhereReleasesShare) {
  // Flow 0 is bottlenecked by its narrow second link; flow 1 takes the rest.
  std::vector<FlowSpec> flows = {MakeFlow(0, 1, -1), MakeFlow(0, -1, -1)};
  AllocateMaxMin(flows, {10e6, 2e6});
  EXPECT_NEAR(flows[0].rate_bps, 2e6, 1.0);
  EXPECT_NEAR(flows[1].rate_bps, 8e6, 1.0);
}

TEST(Allocator, ClassicMaxMinExample) {
  // Three links A=10, B=4, C=6. Flow0 crosses A,B; flow1 crosses B; flow2 crosses
  // A,C. Max-min: B splits 2/2; flow2 gets min(10-2, 6) = 6.
  std::vector<FlowSpec> flows = {MakeFlow(0, 1, -1), MakeFlow(1, -1, -1), MakeFlow(0, 2, -1)};
  AllocateMaxMin(flows, {10e6, 4e6, 6e6});
  EXPECT_NEAR(flows[0].rate_bps, 2e6, 1.0);
  EXPECT_NEAR(flows[1].rate_bps, 2e6, 1.0);
  EXPECT_NEAR(flows[2].rate_bps, 6e6, 1.0);
}

TEST(Allocator, NoLinksMeansCapRate) {
  std::vector<FlowSpec> flows = {MakeFlow(-1, -1, -1, 5e6)};
  AllocateMaxMin(flows, {});
  EXPECT_DOUBLE_EQ(flows[0].rate_bps, 5e6);
}

TEST(Allocator, ZeroCapacityLink) {
  std::vector<FlowSpec> flows = {MakeFlow(0, -1, -1)};
  AllocateMaxMin(flows, {0.0});
  EXPECT_DOUBLE_EQ(flows[0].rate_bps, 0.0);
}

TEST(Allocator, EmptyFlows) {
  std::vector<FlowSpec> flows;
  AllocateMaxMin(flows, {10e6});  // must not crash
}

// Property-based sweep: on random instances the allocation must be (a) feasible on
// every link, (b) within every flow cap, and (c) max-min optimal: every flow is
// either cap-limited or crosses at least one saturated link whose other flows all
// have rates <= its own (otherwise its rate could be raised).
class AllocatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorPropertyTest, RandomInstanceInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  const int num_links = static_cast<int>(rng.UniformInt(1, 40));
  const int num_flows = static_cast<int>(rng.UniformInt(1, 120));

  std::vector<double> capacity(static_cast<size_t>(num_links));
  for (auto& c : capacity) {
    c = rng.UniformDouble(0.5e6, 20e6);
  }
  std::vector<FlowSpec> flows;
  for (int i = 0; i < num_flows; ++i) {
    FlowSpec f;
    const int nlinks = static_cast<int>(rng.UniformInt(1, 3));
    for (int l = 0; l < nlinks; ++l) {
      f.links[l] = static_cast<int32_t>(rng.UniformInt(0, num_links - 1));
    }
    f.cap_bps = rng.Bernoulli(0.3) ? rng.UniformDouble(0.1e6, 5e6) : kUnlimited;
    flows.push_back(f);
  }

  AllocateMaxMin(flows, capacity);

  // (a) feasibility and (b) caps.
  std::vector<double> used(static_cast<size_t>(num_links), 0.0);
  for (const auto& f : flows) {
    EXPECT_GE(f.rate_bps, 0.0);
    EXPECT_LE(f.rate_bps, f.cap_bps * (1.0 + 1e-9));
    for (int l = 0; l < 3; ++l) {
      if (f.links[l] >= 0) {
        used[static_cast<size_t>(f.links[l])] += f.rate_bps;
      }
    }
  }
  for (int l = 0; l < num_links; ++l) {
    EXPECT_LE(used[static_cast<size_t>(l)], capacity[static_cast<size_t>(l)] * (1.0 + 1e-6))
        << "link " << l;
  }

  // (c) max-min optimality.
  constexpr double kTol = 1.0;  // 1 bps
  for (const auto& f : flows) {
    if (f.rate_bps >= f.cap_bps - kTol) {
      continue;  // cap-limited
    }
    bool justified = false;
    for (int l = 0; l < 3 && !justified; ++l) {
      if (f.links[l] < 0) {
        continue;
      }
      const size_t li = static_cast<size_t>(f.links[l]);
      if (used[li] < capacity[li] - kTol) {
        continue;  // link not saturated
      }
      // Saturated link: check that f has a maximal rate among its flows.
      bool is_max = true;
      for (const auto& g : flows) {
        bool on_link = false;
        for (int gl = 0; gl < 3; ++gl) {
          if (g.links[gl] == f.links[l]) {
            on_link = true;
          }
        }
        if (on_link && g.rate_bps > f.rate_bps + kTol) {
          is_max = false;
          break;
        }
      }
      justified = is_max;
    }
    EXPECT_TRUE(justified) << "flow with rate " << f.rate_bps
                           << " is neither cap-limited nor bottleneck-justified";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, AllocatorPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace bullet
