// LT-style rateless erasure codec (Section 2.2 of the paper).
//
// The encoder derives each encoded block deterministically from its sequence id: the
// id seeds a PRNG that draws a degree from the robust soliton distribution and a set
// of distinct source-block indices; the block payload is their XOR. Any party that
// knows (n, seed policy) can reconstruct the composition of any encoded id — this is
// what lets the source alone encode while receivers decode, with no per-block
// composition metadata beyond the 8-byte id.
//
// The decoder is the standard peeling decoder: degree-1 blocks release source blocks,
// releases are substituted into the remaining equations, newly released degree-1
// blocks keep the ripple going. It also exposes the decode-progress curve, which the
// paper leans on ("even with n received blocks, only 30 percent of the file content
// can be reconstructed") — see tests/codec/lt_codec_test.cc and bench_fig13.

#ifndef SRC_CODEC_LT_CODEC_H_
#define SRC_CODEC_LT_CODEC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/codec/degree_distribution.h"
#include "src/common/rng.h"

namespace bullet {

using Block = std::vector<uint8_t>;

// Deterministic composition of encoded block `encoded_id`: the sorted, distinct
// source-block indices XOR-ed together.
std::vector<uint32_t> EncodedComposition(uint32_t encoded_id, uint32_t num_blocks,
                                         const RobustSoliton& soliton, uint64_t stream_seed);

class LtEncoder {
 public:
  // `file` is padded internally to a whole number of blocks.
  LtEncoder(std::vector<uint8_t> file, size_t block_bytes, uint64_t stream_seed = 0x17);

  uint32_t num_blocks() const { return num_blocks_; }
  size_t block_bytes() const { return block_bytes_; }
  int64_t file_bytes() const { return static_cast<int64_t>(file_.size()); }

  // Produces the payload of encoded block `encoded_id`.
  Block Encode(uint32_t encoded_id) const;

  const RobustSoliton& soliton() const { return soliton_; }
  uint64_t stream_seed() const { return stream_seed_; }

 private:
  std::vector<uint8_t> file_;
  size_t block_bytes_;
  uint32_t num_blocks_;
  uint64_t stream_seed_;
  RobustSoliton soliton_;
};

class LtDecoder {
 public:
  LtDecoder(uint32_t num_blocks, size_t block_bytes, uint64_t stream_seed = 0x17);

  // Feeds one encoded block. Returns the number of source blocks newly recovered by
  // the peeling ripple this block triggered (possibly 0).
  int AddEncoded(uint32_t encoded_id, Block payload);

  bool complete() const { return recovered_count_ == num_blocks_; }
  uint32_t recovered_count() const { return recovered_count_; }
  uint32_t received_count() const { return received_count_; }

  // Recovered file (unpadded up to `file_bytes` if given). Requires complete().
  std::vector<uint8_t> Reconstruct(int64_t file_bytes = -1) const;

  // Decode-progress curve: recovered_count after each received block.
  const std::vector<uint32_t>& progress() const { return progress_; }

 private:
  struct Equation {
    std::vector<uint32_t> unknowns;  // unresolved source indices
    Block payload;
  };

  // Substitute a recovered source block into pending equations.
  void Propagate(uint32_t source_index);

  uint32_t num_blocks_;
  size_t block_bytes_;
  uint64_t stream_seed_;
  RobustSoliton soliton_;

  std::vector<Block> recovered_;        // empty until recovered
  std::vector<char> is_recovered_;
  uint32_t recovered_count_ = 0;
  uint32_t received_count_ = 0;

  std::vector<std::unique_ptr<Equation>> equations_;
  // source index -> equation slots referencing it
  std::vector<std::vector<size_t>> index_to_equations_;
  std::vector<uint32_t> ripple_;  // recovered indices pending propagation
  std::vector<uint32_t> progress_;
};

}  // namespace bullet

#endif  // SRC_CODEC_LT_CODEC_H_
