#include "src/harness/scenario_runner.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/common/cdf.h"
#include "src/common/stats.h"
#include "src/harness/flag_parse.h"
#include "src/harness/json_writer.h"
#include "src/harness/sweep.h"
#include "src/harness/workload.h"
#include "src/overlay/protocol_registry.h"

namespace bullet {
namespace {

bool MatchesFlag(const std::string& arg, const std::string& flag) {
  return arg == flag || arg.compare(0, flag.size() + 1, flag + "=") == 0;
}

// Consumes the raw text of "--flag value" or "--flag=value"; false when missing.
bool ConsumeString(int argc, const char* const* argv, int* i, const std::string& arg,
                   const std::string& flag, std::string* out) {
  if (arg.compare(0, flag.size() + 1, flag + "=") == 0) {
    *out = arg.substr(flag.size() + 1);
    return !out->empty();
  }
  if (arg == flag) {
    if (*i + 1 >= argc) {
      return false;
    }
    *out = argv[++*i];
    return true;
  }
  return false;
}

// Strict parses shared with the sweep grammar; see flag_parse.h.
using bullet::ParseStrictDouble;
using bullet::ParseStrictInt64;
using bullet::ParseStrictUint64;

// --threads > 1 selects the partitioned parallel engine, whose partition cut
// is the transit-stub domain hierarchy — a mesh run has nothing to partition.
// Validated up front as a usage-class error (exit 2, like --profile with
// sweep mode), not left to become a silent serial fallback or an engine-level
// abort. `topology` is the --topology override when given; otherwise only the
// scenario itself knows its default, via the transit-stub side registry.
bool ValidateThreadsRequest(const std::string& scenario,
                            const std::optional<std::string>& topology, bool threads_above_one,
                            std::string* error) {
  if (!threads_above_one) {
    return true;
  }
  const bool transit_stub =
      topology ? *topology == "transit-stub" : ScenarioDefaultsToTransitStub(scenario);
  if (transit_stub) {
    return true;
  }
  *error = "--threads > 1 requires a transit-stub topology, but scenario '" + scenario +
           "' does not default to one (add --topology transit-stub or drop --threads)";
  return false;
}

}  // namespace

RunnerArgs ParseRunnerArgs(int argc, const char* const* argv) {
  RunnerArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      args.list = true;
    } else if (arg == "--help" || arg == "-h") {
      args.help = true;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg == "--profile") {
      args.profile = true;
    } else if (MatchesFlag(arg, "--scenario")) {
      if (!ConsumeString(argc, argv, &i, arg, "--scenario", &args.scenario)) {
        args.ok = false;
        args.error = "--scenario requires a name";
        return args;
      }
    } else if (MatchesFlag(arg, "--out")) {
      if (!ConsumeString(argc, argv, &i, arg, "--out", &args.out_path)) {
        args.ok = false;
        args.error = "--out requires a path";
        return args;
      }
    } else if (const ScenarioOptionDef* def = [&arg]() -> const ScenarioOptionDef* {
                 for (const ScenarioOptionDef& d : ScenarioOptionTable()) {
                   if (MatchesFlag(arg, d.flag)) {
                     return &d;
                   }
                 }
                 return nullptr;
               }()) {
      std::string text;
      std::string error;
      if (!ConsumeString(argc, argv, &i, arg, def->flag, &text) ||
          !def->parse(text, &args.options, &error)) {
        args.ok = false;
        args.error = error.empty() ? def->flag_error : error;
        return args;
      }
    } else if (MatchesFlag(arg, "--sweep")) {
      std::string text;
      SweepAxis axis;
      std::string axis_error;
      if (!ConsumeString(argc, argv, &i, arg, "--sweep", &text) ||
          !ParseSweepAxisSpec(text, &axis, &axis_error)) {
        args.ok = false;
        args.error = axis_error.empty() ? "--sweep requires key=v1,v2,..." : axis_error;
        return args;
      }
      args.sweep_axes.push_back(std::move(axis));
    } else if (MatchesFlag(arg, "--sweep-file")) {
      if (!ConsumeString(argc, argv, &i, arg, "--sweep-file", &args.sweep_file)) {
        args.ok = false;
        args.error = "--sweep-file requires a path";
        return args;
      }
    } else if (MatchesFlag(arg, "--sweep-name")) {
      std::string text;
      if (!ConsumeString(argc, argv, &i, arg, "--sweep-name", &text)) {
        args.ok = false;
        args.error = "--sweep-name requires a value";
        return args;
      }
      args.sweep_name = text;
    } else if (MatchesFlag(arg, "--repeats")) {
      std::string text;
      int64_t v = 0;
      if (!ConsumeString(argc, argv, &i, arg, "--repeats", &text) || !ParseStrictInt64(text, &v) ||
          v < 1 || v > 10000) {
        args.ok = false;
        args.error = "--repeats requires an integer in [1, 10000]";
        return args;
      }
      args.repeats = static_cast<int>(v);
    } else if (MatchesFlag(arg, "--jobs")) {
      std::string text;
      int64_t v = 0;
      if (!ConsumeString(argc, argv, &i, arg, "--jobs", &text) || !ParseStrictInt64(text, &v) ||
          v < 0 || v > 1024) {
        args.ok = false;
        args.error = "--jobs requires an integer in [0, 1024] (0 = auto)";
        return args;
      }
      args.jobs = static_cast<int>(v);
    } else if (MatchesFlag(arg, "--out-dir")) {
      if (!ConsumeString(argc, argv, &i, arg, "--out-dir", &args.out_dir)) {
        args.ok = false;
        args.error = "--out-dir requires a path";
        return args;
      }
    } else {
      args.ok = false;
      args.error = "unknown argument: " + arg;
      return args;
    }
  }
  // A sweep file may name the scenario itself; everything else needs --scenario.
  if (!args.help && !args.list && args.scenario.empty() && args.sweep_file.empty()) {
    args.ok = false;
    args.error = "one of --list or --scenario NAME is required";
  }
  // Sweeps already surface per-phase counts in the aggregate (profiled builds)
  // and throughput in the floors file; the interactive summary is single-run.
  if (args.ok && args.profile && args.sweep_mode()) {
    args.ok = false;
    args.error = "--profile applies to single runs only, not sweep mode";
  }
  return args;
}

void WriteReportJson(std::ostream& os, const ScenarioReport& report,
                     const ScenarioOptions& options, const PhaseSnapshot* profile) {
  JsonWriter json(os);
  json.BeginObject();
  json.Field("schema", "bullet-bench-v3");
  json.Field("scenario", report.scenario());
  json.Field("repro_scale", GetReproScale().file_scale);

  // The overrides as requested on the command line. Scenarios with fixed setups
  // (e.g. fig12's 8-node topology, fig15's delta bundle) may ignore overrides that
  // do not apply to them, so this records the request, not a guarantee. Emission
  // order is the option table's row order; rows without a json_key (--loss) are
  // never echoed — committed baselines pin both properties.
  json.Key("requested_options").BeginObject();
  for (const ScenarioOptionDef& def : ScenarioOptionTable()) {
    if (def.echo != nullptr) {
      def.echo(options, &json);
    }
  }
  json.EndObject();

  json.Key("scalars").BeginObject();
  for (const auto& [key, value] : report.scalars()) {
    json.Field(key, value);
  }
  json.EndObject();

  json.Key("series").BeginArray();
  for (const SeriesReport& s : report.series()) {
    json.BeginObject();
    json.Field("name", s.name);
    json.Field("count", static_cast<int64_t>(s.samples.size()));
    json.Field("p05_s", Percentile(s.samples, 0.05));
    json.Field("p50_s", Percentile(s.samples, 0.50));
    json.Field("p90_s", Percentile(s.samples, 0.90));
    json.Field("max_s", Percentile(s.samples, 1.0));
    json.Key("metrics").BeginObject();
    for (const auto& [key, value] : s.metrics) {
      json.Field(key, value);
    }
    json.EndObject();
    json.Key("samples").BeginArray();
    for (const double v : s.samples) {
      json.Number(v);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  // Per-phase {count, ns} totals, present only when a profiled build recorded
  // something. Counts are deterministic; ns is wall-clock and allowed here
  // because per-run documents are never diffed for byte identity.
  if (profile != nullptr && profile->total_count() > 0) {
    json.Key("profile").BeginObject();
    for (int p = 0; p < kProfilePhaseCount; ++p) {
      json.Key(ProfilePhaseName(static_cast<ProfilePhase>(p))).BeginObject();
      json.Field("count", static_cast<int64_t>(profile->phases[p].count));
      json.Field("ns", static_cast<int64_t>(profile->phases[p].ns));
      json.EndObject();
    }
    json.EndObject();
  }

  json.EndObject();
  os << "\n";
}

void PrintProfileSummary(std::ostream& os, const RunCounters& counters,
                         const PhaseSnapshot& profile, double wall_sec) {
  os << "### profile\n";
  const double denom = wall_sec > 1e-9 ? wall_sec : 1e-9;
  os << "wall_sec            = " << wall_sec << "\n";
  os << "events_executed     = " << counters.events_executed << "  ("
     << static_cast<uint64_t>(static_cast<double>(counters.events_executed) / denom)
     << " events/s)\n";
  os << "allocator_epochs    = " << counters.allocator_epochs << "\n";
  os << "sim_bytes_sent      = " << counters.sim_bytes_sent << "  ("
     << static_cast<uint64_t>(static_cast<double>(counters.sim_bytes_sent) / denom)
     << " bytes/s)\n";
  // Peak RSS is machine/allocator-dependent, so it is informational output
  // only — it must never land in a BENCH json (those stay byte-identical
  // across machines; the gated memory telemetry is the deterministic byte
  // counters instead). Linux-only: VmHWM from /proc/self/status.
  if (std::ifstream status{"/proc/self/status"}; status) {
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("VmHWM:", 0) == 0) {
        os << "peak_rss            =" << line.substr(6) << "  (informational)\n";
        break;
      }
    }
  }
  if (!PhaseProfiler::kCompiledIn) {
    os << "(per-phase timings unavailable: rebuild with -DBULLET_PROFILE=ON)\n";
    return;
  }
  os << "\nphase               count          total_ms   avg_ns\n";
  for (int p = 0; p < kProfilePhaseCount; ++p) {
    const PhaseProfiler::PhaseTotals& t = profile.phases[p];
    std::ostringstream name;
    name << ProfilePhaseName(static_cast<ProfilePhase>(p));
    os << name.str() << std::string(name.str().size() < 20 ? 20 - name.str().size() : 1, ' ');
    std::ostringstream count;
    count << t.count;
    os << count.str() << std::string(count.str().size() < 15 ? 15 - count.str().size() : 1, ' ');
    std::ostringstream total;
    total << static_cast<double>(t.ns) / 1e6;
    os << total.str() << std::string(total.str().size() < 11 ? 11 - total.str().size() : 1, ' ');
    os << (t.count > 0 ? t.ns / t.count : 0) << "\n";
  }
  os << "(timers are inclusive: e.g. protocol_logic runs inside event_dispatch)\n";
}

void PrintScenarioList(std::ostream& os, const ScenarioRegistry& registry) {
  for (const ScenarioRegistry::Entry* entry : registry.List()) {
    os << entry->name << "\t" << entry->description << "\n";
  }
}

void PrintRunnerUsage(std::ostream& os) {
  os << "bullet_run — registry-driven scenario runner for the Bullet' reproduction\n"
        "\n"
        "usage:\n"
        "  bullet_run --list\n"
        "  bullet_run --scenario NAME [overrides]\n"
        "  bullet_run --scenario NAME --sweep key=v1,v2 [--sweep ...] [--repeats R]\n"
        "  bullet_run --sweep-file PATH [overrides]\n"
        "\n"
        "overrides (defaults come from the scenario; fixed-setup scenarios ignore\n"
        "overrides that do not apply, see bench/*.cc):\n"
        "  --nodes N          number of participants\n"
        "  --file-mb F        transferred file size in MB (pre-scaled scenarios ignore\n"
        "                     REPRO_SCALE when this is set)\n"
        "  --seed S           simulation seed (sweeps: base seed for stream derivation)\n"
        "  --block-bytes B    block size in bytes\n"
        "  --deadline-sec D   simulated-time deadline\n"
        "  --loss L           per-link loss rates become uniform in [0, L]\n"
        "  --topology T       mesh | transit-stub (routed sparse graph with shared\n"
        "                     interior links; fixed-topology scenarios ignore it)\n"
        "  --system S         protocol registry key (bullet-prime, bullet, bittorrent,\n"
        "                     splitstream); fixed-roster comparison scenarios ignore it\n"
        "  --join-fraction F  fraction of receivers joining late in staggered-join\n"
        "                     scenarios (fig18_flash_crowd); others ignore it\n"
        "  --lifetime-pareto-alpha A\n"
        "                     Pareto tail index for lifetime-churn scenarios\n"
        "                     (fig21_churn_lifetimes); others ignore it\n"
        "  --churn-model M    none | leaf | stub | gateway — churn model for\n"
        "                     scenarios that honor it (fig22_correlated_failures)\n"
        "  --stream-bitrate-mbps R\n"
        "                     playback bitrate for streaming-deadline scenarios\n"
        "                     (fig23_streaming_deadlines); others ignore it\n"
        "  --stream-window-blocks W\n"
        "                     sliding request-window size (blocks ahead of the\n"
        "                     playhead) for streaming-deadline scenarios\n"
        "  --threads N        engine worker threads; > 1 runs the partitioned\n"
        "                     parallel engine (transit-stub topologies only;\n"
        "                     1 is bit-identical to the serial engine)\n"
        "  --compress-routes B\n"
        "                     1 caches shared gateway-to-gateway route segments\n"
        "                     and composes per-pair routes lazily (transit-stub\n"
        "                     only; composed routes are bitwise-identical)\n"
        "  --aggregate-flows B\n"
        "                     1 water-fills bundles of flows sharing an interior\n"
        "                     route instead of individual flows (mega-swarm\n"
        "                     mode; NOT bit-identical to the default allocator)\n"
        "  --out PATH         metrics JSON path (default BENCH_<scenario>.json; sweeps:\n"
        "                     aggregate path, default BENCH_sweep_<name>.json)\n"
        "  --quiet            suppress the summary table / CDF dump on stdout\n"
        "  --profile          print run counters and, in -DBULLET_PROFILE=ON builds,\n"
        "                     the per-phase count/timing table (single runs only;\n"
        "                     see docs/PERFORMANCE.md)\n"
        "\n"
        "sweep mode (runs scenario × cartesian grid × repeats on a worker pool;\n"
        "aggregate JSON is byte-identical for a given spec regardless of --jobs;\n"
        "also writes BENCH_sweep_<name>_floors.json with measured events/sec and\n"
        "sim-bytes/sec per grid point for the CI throughput-floor gate):\n"
        "  --sweep key=v1,..  one grid axis (nodes, file-mb, block-bytes,\n"
        "                     deadline-sec, loss, join-fraction,\n"
        "                     lifetime-pareto-alpha, churn-model,\n"
        "                     stream-bitrate-mbps, stream-window-blocks,\n"
        "                     threads, compress-routes, aggregate-flows);\n"
        "                     repeat the flag for more axes\n"
        "  --sweep-file PATH  spec file (scenario/name/repeats/seed/set/sweep lines);\n"
        "                     command-line flags override file directives\n"
        "  --repeats R        runs per grid point (default 1)\n"
        "  --jobs J           worker threads (default 0 = hardware concurrency)\n"
        "  --sweep-name TAG   output tag (default scenario name)\n"
        "  --out-dir DIR      directory for sweep JSON artifacts (default .)\n"
        "\n"
        "REPRO_SCALE=ci|full scales paper file sizes (ci: 20%, default).\n";
}

namespace {

// Layers the sweep-related CLI flags over whatever the sweep file provided.
bool BuildSweepSpec(const RunnerArgs& args, SweepSpec* spec, std::string* error) {
  if (!args.sweep_file.empty()) {
    std::ifstream in(args.sweep_file);
    if (!in) {
      *error = "cannot read sweep file " + args.sweep_file;
      return false;
    }
    std::string parse_error;
    if (!ParseSweepFile(in, spec, &parse_error)) {
      *error = args.sweep_file + ": " + parse_error;
      return false;
    }
  }
  if (!args.scenario.empty()) {
    spec->scenario = args.scenario;
  }
  if (spec->scenario.empty()) {
    *error = "sweep names no scenario (use --scenario or a 'scenario' line)";
    return false;
  }
  if (args.sweep_name) {
    spec->name = *args.sweep_name;
  }
  if (args.repeats) {
    spec->repeats = *args.repeats;
  }
  for (const SweepAxis& axis : args.sweep_axes) {
    spec->axes.push_back(axis);
  }
  // Catches duplicates both among --sweep flags and between flags and file axes.
  std::string duplicate;
  if (FindDuplicateAxisKey(spec->axes, &duplicate)) {
    *error = "duplicate sweep axis '" + duplicate + "'";
    return false;
  }
  // Fixed CLI overrides become the base point; the seed doubles as the stream-
  // derivation base. Null fields keep whatever the file's `set`/`seed` lines said.
  const ScenarioOptions& o = args.options;
  if (o.nodes) {
    spec->base.nodes = o.nodes;
  }
  if (o.file_mb) {
    spec->base.file_mb = o.file_mb;
  }
  if (o.block_bytes) {
    spec->base.block_bytes = o.block_bytes;
  }
  if (o.deadline_sec) {
    spec->base.deadline_sec = o.deadline_sec;
  }
  if (o.loss) {
    spec->base.loss = o.loss;
  }
  if (o.topology) {
    spec->base.topology = o.topology;
  }
  if (o.system) {
    spec->base.system = o.system;
  }
  if (o.join_fraction) {
    spec->base.join_fraction = o.join_fraction;
  }
  if (o.lifetime_pareto_alpha) {
    spec->base.lifetime_pareto_alpha = o.lifetime_pareto_alpha;
  }
  if (o.churn_model) {
    spec->base.churn_model = o.churn_model;
  }
  if (o.threads) {
    spec->base.threads = o.threads;
  }
  if (o.compress_routes) {
    spec->base.compress_routes = o.compress_routes;
  }
  if (o.aggregate_flows) {
    spec->base.aggregate_flows = o.aggregate_flows;
  }
  if (o.seed) {
    spec->base_seed = *o.seed;
  }
  return true;
}

int RunSweepMode(const RunnerArgs& args, const ScenarioRegistry& registry, std::ostream& out,
                 std::ostream& err) {
  SweepSpec spec;
  std::string error;
  if (!BuildSweepSpec(args, &spec, &error)) {
    err << "bullet_run: " << error << "\n";
    return 2;
  }
  if (registry.Find(spec.scenario) == nullptr) {
    err << "bullet_run: unknown scenario '" << spec.scenario << "'; --list shows all "
        << registry.size() << "\n";
    return 2;
  }
  bool threads_above_one = spec.base.threads && *spec.base.threads > 1;
  for (const SweepAxis& axis : spec.axes) {
    if (axis.key == "threads") {
      for (const double v : axis.values) {
        threads_above_one = threads_above_one || v > 1.0;
      }
    }
  }
  if (!ValidateThreadsRequest(spec.scenario, spec.base.topology, threads_above_one, &error)) {
    err << "bullet_run: " << error << "\n";
    return 2;
  }

  const SweepRunOutcome outcome = RunSweep(spec, registry, args.jobs);
  if (!outcome.ok) {
    err << "bullet_run: sweep failed: " << outcome.error << "\n";
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  if (ec) {
    err << "bullet_run: cannot create " << args.out_dir << ": " << ec.message() << "\n";
    return 1;
  }
  const auto write_json = [&err](const std::string& path, const auto& emit) {
    std::ofstream file(path);
    if (file) {
      emit(file);
      file.close();
    }
    if (!file) {
      err << "bullet_run: failed writing " << path << "\n";
      return false;
    }
    return true;
  };

  // Per-run v3 reports first, then the v3 aggregate the CI gate diffs, then
  // the machine-dependent floors companion the throughput gate consumes.
  const std::string tag = spec.OutputName();
  for (const ScenarioContext& ctx : outcome.runs) {
    const std::string path = args.out_dir + "/BENCH_sweep_" + tag + "_p" +
                             std::to_string(ctx.point.point_index) + "_r" +
                             std::to_string(ctx.point.repeat) + ".json";
    if (!write_json(path, [&ctx](std::ostream& os) {
          WriteReportJson(os, *ctx.report, ctx.point.options, &ctx.profile);
        })) {
      return 1;
    }
  }
  const std::string aggregate_path =
      args.out_path.empty() ? args.out_dir + "/BENCH_sweep_" + tag + ".json" : args.out_path;
  if (!write_json(aggregate_path,
                  [&outcome](std::ostream& os) { WriteSweepJson(os, outcome); })) {
    return 1;
  }
  const std::string floors_path = args.out_dir + "/BENCH_sweep_" + tag + "_floors.json";
  if (!write_json(floors_path,
                  [&outcome](std::ostream& os) { WriteSweepFloorsJson(os, outcome); })) {
    return 1;
  }
  // Memory-ceilings companion, only for sweeps whose scenario reports the
  // deterministic memory-byte scalars (fig24_megaswarm); the CI memory gate
  // diffs it against a committed bullet-ceilings-v1 baseline.
  if (SweepHasCeilingMetrics(outcome)) {
    const std::string ceilings_path = args.out_dir + "/BENCH_sweep_" + tag + "_ceilings.json";
    if (!write_json(ceilings_path,
                    [&outcome](std::ostream& os) { WriteSweepCeilingsJson(os, outcome); })) {
      return 1;
    }
  }

  if (!args.quiet) {
    const size_t grid = outcome.runs.size() / static_cast<size_t>(spec.repeats);
    out << "### sweep " << tag << " — scenario " << spec.scenario << ": " << grid
        << " grid points x " << spec.repeats << " repeats = " << outcome.runs.size()
        << " runs on " << outcome.jobs_used << " worker(s) in " << outcome.wall_sec << " s\n";
  }
  out << "wrote " << aggregate_path << "\n";
  return 0;
}

}  // namespace

int RunnerMain(int argc, const char* const* argv, const ScenarioRegistry& registry,
               std::ostream& out, std::ostream& err) {
  const RunnerArgs args = ParseRunnerArgs(argc, argv);
  if (!args.ok) {
    err << "bullet_run: " << args.error << "\n";
    PrintRunnerUsage(err);
    return 2;
  }
  if (args.help) {
    PrintRunnerUsage(out);
    return 0;
  }
  if (args.list) {
    PrintScenarioList(out, registry);
    return 0;
  }
  if (args.sweep_mode()) {
    return RunSweepMode(args, registry, out, err);
  }

  const ScenarioRegistry::Entry* entry = registry.Find(args.scenario);
  if (entry == nullptr) {
    // Usage-class error: exit 2 on stderr, like bad flags, so CI scripts and
    // pipelines can tell "you asked wrong" from "the run failed".
    err << "bullet_run: unknown scenario '" << args.scenario << "'; --list shows all "
        << registry.size() << "\n";
    return 2;
  }
  std::string threads_error;
  if (!ValidateThreadsRequest(args.scenario, args.options.topology,
                              args.options.threads && *args.options.threads > 1,
                              &threads_error)) {
    err << "bullet_run: " << threads_error << "\n";
    return 2;
  }

  // Counters always record (they are cheap and deterministic); the profiler
  // records per-phase data only in BULLET_PROFILE builds.
  RunCounters counters;
  PhaseProfiler profiler;
  const auto run_start = std::chrono::steady_clock::now();
  const ScenarioReport report = [&] {
    ScopedRunCounters install_counters(&counters);
    ScopedProfilerInstall install_profiler(&profiler);
    return entry->fn(args.options);
  }();
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start).count();
  const PhaseSnapshot profile = SnapshotPhases(profiler);

  const std::string out_path =
      args.out_path.empty() ? "BENCH_" + report.scenario() + ".json" : args.out_path;
  std::ofstream file(out_path);
  if (!file) {
    err << "bullet_run: cannot open " << out_path << " for writing\n";
    return 1;
  }
  WriteReportJson(file, report, args.options, &profile);
  file.close();
  if (!file) {
    err << "bullet_run: failed writing " << out_path << "\n";
    return 1;
  }

  if (!args.quiet) {
    out << "### " << entry->name << " — " << entry->description << "\n";
    const std::vector<CdfSeries> series = report.AsCdfSeries();
    PrintSummaryTable(out, series);
    if (!report.scalars().empty()) {
      out << "\n### scalars\n";
      for (const auto& [key, value] : report.scalars()) {
        out << key << " = " << value << "\n";
      }
    }
    out << "\n### CDF series (fraction, seconds)\n";
    PrintCdf(out, series, 20);
  }
  if (args.profile) {
    PrintProfileSummary(out, counters, profile, wall_sec);
  }
  out << "wrote " << out_path << "\n";
  return 0;
}

int RunnerMain(int argc, const char* const* argv) {
  return RunnerMain(argc, argv, ScenarioRegistry::Global(), std::cout, std::cerr);
}

}  // namespace bullet
