// Pooled arena allocation for mega-swarm per-node protocol state.
//
// At 10^5 members the per-node std::map peer tables dominate RSS: every entry
// is its own malloc (red-black node header + allocator metadata per peer), and
// the allocator never returns freed nodes to a shared pool. PooledArena hands
// out stable typed slots from chunked slabs with an intrusive free list, so a
// node's peer table costs a handful of slab allocations however often peers
// churn, and an ArenaCounter aggregates live/peak bytes across every node for
// the memory telemetry the harness reports (WorkloadResult::arena_bytes).

#ifndef SRC_SIM_SCALE_ARENA_H_
#define SRC_SIM_SCALE_ARENA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace bullet {

// Live/peak byte counter shared by many arenas (one per node-state container).
// Atomic because the partitioned parallel engine mutates protocol state from
// worker threads; updates happen only on slab/table growth, not per operation.
class ArenaCounter {
 public:
  void Add(int64_t delta) {
    const int64_t now = current_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  int64_t current_bytes() const { return current_.load(std::memory_order_relaxed); }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

// Chunked typed arena: stable addresses (slabs never move), freed slots reused
// LIFO. The owner destroys live objects (Delete) before the arena dies; the
// arena only reclaims slab memory.
template <typename T, size_t kChunkEntries = 32>
class PooledArena {
 public:
  explicit PooledArena(ArenaCounter* counter = nullptr) : counter_(counter) {}
  PooledArena(PooledArena&&) = default;
  PooledArena& operator=(PooledArena&&) = default;
  ~PooledArena() {
    if (counter_ != nullptr) {
      counter_->Add(-static_cast<int64_t>(chunks_.size() * sizeof(Chunk)) -
                    static_cast<int64_t>(free_.capacity() * sizeof(T*)));
    }
  }

  template <typename... Args>
  T* New(Args&&... args) {
    if (free_.empty()) {
      Grow();
    }
    T* slot = free_.back();
    free_.pop_back();
    return new (slot) T(std::forward<Args>(args)...);
  }

  void Delete(T* p) {
    p->~T();
    // The free list can outgrow the capacity reserved at Grow time (slots
    // handed out earlier all coming back at once, e.g. clear()); count that
    // growth too so the counter balances to zero at teardown.
    const size_t before = free_.capacity();
    free_.push_back(p);
    if (counter_ != nullptr && free_.capacity() != before) {
      counter_->Add(static_cast<int64_t>((free_.capacity() - before) * sizeof(T*)));
    }
  }

  size_t allocated_bytes() const {
    return chunks_.size() * sizeof(Chunk) + free_.capacity() * sizeof(T*);
  }

 private:
  struct Chunk {
    alignas(alignof(T)) unsigned char bytes[sizeof(T) * kChunkEntries];
  };

  void Grow() {
    const size_t before = free_.capacity() * sizeof(T*);
    chunks_.push_back(std::make_unique<Chunk>());
    unsigned char* base = chunks_.back()->bytes;
    free_.reserve(free_.size() + kChunkEntries);
    // Push in reverse so slots are handed out front-to-back within a slab.
    for (size_t i = kChunkEntries; i-- > 0;) {
      free_.push_back(reinterpret_cast<T*>(base + i * sizeof(T)));
    }
    if (counter_ != nullptr) {
      counter_->Add(static_cast<int64_t>(sizeof(Chunk)) +
                    static_cast<int64_t>(free_.capacity() * sizeof(T*) - before));
    }
  }

  ArenaCounter* counter_ = nullptr;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<T*> free_;
};

}  // namespace bullet

#endif  // SRC_SIM_SCALE_ARENA_H_
