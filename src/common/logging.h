// Minimal leveled logging. The emulator is single-threaded per simulation, but the
// sweep engine runs many simulations concurrently, so the global level is atomic and
// each LogLine is a single stderr write. Logging is off by default and enabled via
// BULLET_LOG=debug|info|warn for debugging runs.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace bullet {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

bool LogEnabled(LogLevel level);
void LogLine(LogLevel level, const std::string& msg);

namespace log_internal {

[[noreturn]] void CheckFail(const char* condition, const char* file, int line);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define BULLET_LOG(level)                            \
  if (!::bullet::LogEnabled(::bullet::LogLevel::level)) { \
  } else                                             \
    ::bullet::log_internal::LogMessage(::bullet::LogLevel::level).stream()

// Always-on invariant check (release builds included): prints the failed
// condition with its location to stderr and aborts. Used for cheap structural
// invariants (index bounds, id-space overflow) whose violation would otherwise
// corrupt a simulation silently; attach context with the `cond && "message"`
// idiom.
#define BULLET_CHECK(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::bullet::log_internal::CheckFail(#cond, __FILE__, __LINE__))

}  // namespace bullet

#endif  // SRC_COMMON_LOGGING_H_
