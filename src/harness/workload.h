// Workload harness: wires a topology, a network, and N *sessions* — each with its
// own file, source, member set, join schedule, protocol (picked by name from the
// ProtocolRegistry) and metrics — and runs them to completion or deadline.
//
// This is the generalization of the single-session Experiment (experiment.h,
// now a thin wrapper): sessions may start staggered (flash crowds, late
// joiners), run concurrently over shared links, and mix protocols in one
// network. The two pieces of machinery that make that correct:
//
//   * per-session completion. Every session owns a RunMetrics whose completion
//     policy targets the session's *own* receiver count; a session finishing
//     never stops the network unless it was the last live session. (The old
//     AcceptBlock rule — stop at num_nodes()-1 completions — is kept only as
//     the fallback for bare protocols without an installed policy.)
//   * join-time instantiation off the event queue. Members with join time 0
//     are created and started before the event loop, exactly like the old
//     Experiment::Run start loop (this keeps all legacy runs byte-identical);
//     later joiners are created, registered and started by events at their
//     join times, grouped per (session, time) bucket — create-all-then-
//     start-all within a bucket, mirroring the two-phase time-zero path.
//
// Constraints (BULLET_CHECK-enforced at AddSession): sessions' member sets are
// pairwise disjoint (one node runs at most one protocol instance), the source
// is a member and joins no later than any other member (it roots the session's
// control tree; RandomStaged only attaches joiners under already-joined
// parents), and every session has at least two members.

#ifndef SRC_HARNESS_WORKLOAD_H_
#define SRC_HARNESS_WORKLOAD_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/harness/churn.h"
#include "src/overlay/control_tree.h"
#include "src/overlay/protocol_registry.h"
#include "src/overlay/session.h"
#include "src/sim/metrics.h"
#include "src/sim/network.h"

namespace bullet {

// Network-level knobs shared by every session (see ExperimentParams for the
// field-by-field rationale; sessions carry the per-transfer state).
struct WorkloadParams {
  uint64_t seed = 1;
  SimTime quantum = MsToSim(10);
  SimTime deadline = SecToSim(3600.0);
  bool record_arrivals = false;
  bool full_recompute_allocator = false;
  bool skip_idle_ticks = false;
  // > 1 requests the partitioned parallel engine (NetworkConfig::num_threads);
  // effective only on transit-stub routed topologies in the incremental
  // allocator mode, serial fallback otherwise. 1 is bit-identical to the
  // serial engine.
  int num_threads = 1;
  // Bundle flows sharing an interior route before water-filling
  // (NetworkConfig::aggregate_flows). Mega-swarm mode: conservation and
  // feasibility are exact but rates are not bit-identical to the default.
  bool aggregate_flows = false;
};

struct SessionResult {
  std::string name;      // spec.name, defaulting to the protocol's display name
  std::string protocol;  // registry key; empty for caller-supplied factories
  // Per receiver, in member order with the source excluded. Absolute sim time;
  // receivers that never completed report the deadline. Receivers that
  // *departed* mid-run without completing are excluded (they are counted in
  // `departed`/`departed_incomplete` instead): a member that left at t=80s of
  // a 3600s run did not "take 3600s to download".
  std::vector<double> completion_sec;
  // Same order: completion relative to the receiver's own join time (the
  // number a late joiner's user experiences).
  std::vector<double> download_sec;
  // Streaming mode only (SessionSpec::streaming); same order and the same
  // departed-exclusion rule as completion_sec. Rebuffer time and positions
  // late against the fixed playback schedule, per receiver.
  std::vector<double> stall_sec;
  std::vector<int> missed_deadline;
  double total_stall_sec = 0.0;
  int total_missed_deadline = 0;
  // Receivers whose playback consumed every required position before the
  // run deadline (streaming mode only).
  int playback_finished = 0;
  double duplicate_fraction = 0.0;
  double control_overhead = 0.0;
  int completed = 0;
  int receivers = 0;
  // Mid-run departures (lifetime draws, seeder departures, churn events).
  int departed = 0;
  // Departed receivers that never completed; the completion policy credits
  // them so the session still terminates.
  int departed_incomplete = 0;
  double start_sec = 0.0;      // session epoch
  double last_join_sec = 0.0;  // latest member join time
  // When every receiver finished: absolute sim seconds; -1 if the deadline hit.
  double completed_at_sec = -1.0;
};

struct WorkloadResult {
  std::vector<SessionResult> sessions;
  int sessions_completed = 0;
  // Peak flows sharing one interior link across the whole run (all sessions).
  int32_t max_shared_link_flows = 0;
  // Mid-run departures across all sessions (lifetimes + churn).
  int total_departures = 0;
  // The churn model's schedule as drawn for this run (empty without a model).
  std::vector<ChurnEvent> churn_events;
  // Deterministic run counters from the network (seed-reproducible; the perf
  // gate divides them by wall time — see docs/PERFORMANCE.md).
  uint64_t events_executed = 0;
  uint64_t allocator_epochs = 0;
  uint64_t sim_bytes_sent = 0;
  // Memory telemetry at the end of the run (deterministic byte counters, not
  // RSS): routed-topology route cache, flow path pools, and the peak of the
  // arena-backed per-node protocol state. See docs/ARCHITECTURE.md
  // "Mega-swarm memory model"; the megaswarm sweep gates ceilings on these.
  uint64_t route_cache_bytes = 0;
  uint64_t path_pool_bytes = 0;
  uint64_t arena_peak_bytes = 0;
};

// Registers the four built-in systems (bullet-prime, bullet, bittorrent,
// splitstream) into ProtocolRegistry::Global(). Idempotent and cheap; the
// harness calls it before any registry lookup so the linker can never drop
// the registrations with the translation units that define them.
void EnsureBuiltinProtocolsRegistered();

class WorkloadExperiment {
 public:
  WorkloadExperiment(std::unique_ptr<Topology> topology, const WorkloadParams& params);
  // Convenience: wrap a concrete topology value (MeshTopology, RoutedTopology).
  template <typename TopologyType,
            typename = std::enable_if_t<std::is_base_of_v<Topology, std::decay_t<TopologyType>>>>
  WorkloadExperiment(TopologyType topology, const WorkloadParams& params)
      : WorkloadExperiment(std::make_unique<std::decay_t<TopologyType>>(std::move(topology)),
                           params) {}

  // Adds a session whose protocol is resolved by name through
  // ProtocolRegistry::Global(). Returns the session index.
  int AddSession(const SessionSpec& spec);
  // Adds a session driven by a caller-supplied per-node factory (the legacy
  // Experiment wrapper and tests); spec.protocol is ignored. A null factory
  // defers the choice — install one with SetSessionFactory before Run.
  int AddSession(const SessionSpec& spec, ProtocolRegistry::NodeFactory factory);
  void SetSessionFactory(int session, ProtocolRegistry::NodeFactory factory);

  // Installs a churn model whose schedule is drawn at Run() over every session
  // (WorkloadSpec::churn; RunScenarioWorkload forwards it automatically).
  void SetChurnModel(std::shared_ptr<const ChurnModel> churn);

  // Executes every session's join schedule and runs the simulation until all
  // sessions complete or the deadline passes. Call once.
  WorkloadResult Run();

  Network& net() { return *net_; }
  const WorkloadParams& params() const { return params_; }

  int num_sessions() const { return static_cast<int>(sessions_.size()); }
  // The normalized spec (members/offsets expanded, seed resolved into seed).
  const SessionSpec& session_spec(int session) const { return at(session).spec; }
  uint64_t session_seed(int session) const { return at(session).seed; }
  const ControlTree& session_tree(int session) const { return at(session).tree; }
  RunMetrics& session_metrics(int session) { return *at(session).metrics; }
  // nullptr before the node's join time (or for non-members).
  Protocol* session_protocol(int session, NodeId node);
  // Absolute join time; -1 for non-members.
  SimTime session_join_time(int session, NodeId node) const;
  bool session_complete(int session) const { return at(session).complete; }

 private:
  struct JoinBucket {
    SimTime at = 0;                    // absolute join time
    std::vector<size_t> member_idx;    // indices into spec.members, join order
  };

  struct Session {
    SessionSpec spec;  // normalized
    uint64_t seed = 0;
    std::string display_name;
    std::string protocol_key;
    ControlTree tree;
    std::unique_ptr<RunMetrics> metrics;
    ProtocolRegistry::NodeFactory factory;       // declared before protocols_:
    std::vector<std::unique_ptr<Protocol>> protocols;  // destroyed first
    std::vector<SimTime> join_at;                // absolute, parallel to members
    std::vector<int> member_slot;                // NodeId -> member index, -1 otherwise
    std::vector<JoinBucket> buckets;             // ascending join time
    std::vector<SimTime> depart_at;              // lifetime departures; -1 = never
    bool complete = false;
  };

  Session& at(int session) { return sessions_.at(static_cast<size_t>(session)); }
  const Session& at(int session) const { return sessions_.at(static_cast<size_t>(session)); }

  int AddSessionImpl(SessionSpec spec, const ProtocolRegistry::Entry* entry,
                     ProtocolRegistry::NodeFactory factory);
  void ExecuteJoinBucket(int session, size_t bucket);
  void OnSessionComplete(int session);
  // Fails `node` on the network and credits its session's completion policy;
  // idempotent, and the source is never departed.
  void DepartNode(int session, NodeId node);
  void ScheduleDynamics();  // lifetime departures + churn schedule, pre-Run
  SessionResult AssembleSessionResult(const Session& s) const;

  WorkloadParams params_;
  std::unique_ptr<Network> net_;
  // Serializes OnSessionComplete: under the parallel engine, sessions on
  // different partitions can complete in the same superstep window, and the
  // completion hook fires on whichever worker recorded the last completion.
  // Its effects (flags, counter, the final Stop()) are value-deterministic
  // regardless of which thread runs it first; the mutex only makes the
  // read-modify-writes atomic.
  std::mutex complete_mu_;
  // deque: Session addresses must stay stable — protocols hold pointers to
  // their session's tree and metrics across AddSession calls.
  std::deque<Session> sessions_;
  std::vector<char> member_claimed_;  // disjointness across sessions
  std::shared_ptr<const ChurnModel> churn_;
  std::vector<ChurnEvent> churn_events_;  // as drawn at Run()
  int total_departures_ = 0;
  int sessions_completed_ = 0;
  bool ran_ = false;
};

}  // namespace bullet

#endif  // SRC_HARNESS_WORKLOAD_H_
