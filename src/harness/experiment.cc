#include "src/harness/experiment.h"

namespace bullet {

Experiment::Experiment(std::unique_ptr<Topology> topology, const ExperimentParams& params)
    : params_(params) {
  WorkloadParams wl_params;
  wl_params.seed = params.seed;
  wl_params.quantum = params.quantum;
  wl_params.deadline = params.deadline;
  wl_params.record_arrivals = params.record_arrivals;
  wl_params.full_recompute_allocator = params.full_recompute_allocator;
  wl_params.skip_idle_ticks = params.skip_idle_ticks;
  workload_ = std::make_unique<WorkloadExperiment>(std::move(topology), wl_params);

  SessionSpec session;
  session.file = params.file;
  session.source = params.source;
  session.seed = params.seed;
  session.tree_fanout = params.tree_fanout;
  // Factory installed in Run(); the session (tree, metrics) exists from
  // construction so tests can inspect them before the run.
  workload_->AddSession(session, nullptr);
}

RunMetrics Experiment::Run(const ProtocolFactory& factory) {
  const ControlTree* tree = &workload_->session_tree(0);
  workload_->SetSessionFactory(
      0, [&factory, tree](const Protocol::Context& ctx) { return factory(ctx, tree); });
  workload_->Run();
  return workload_->session_metrics(0);
}

}  // namespace bullet
