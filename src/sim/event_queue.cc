#include "src/sim/event_queue.h"

#include <utility>

namespace bullet {

EventId EventQueue::Schedule(SimTime at, Callback cb) {
  if (at < now_) {
    at = now_;
  }
  const EventId id = next_seq_ + 1;
  heap_.push(Entry{at, next_seq_, id});
  ++next_seq_;
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void EventQueue::Cancel(EventId id) { callbacks_.erase(id); }

bool EventQueue::Empty() const { return callbacks_.empty(); }

size_t EventQueue::pending() const { return callbacks_.size(); }

uint64_t EventQueue::RunUntil(SimTime until) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!stopped_ && !heap_.empty()) {
    const Entry top = heap_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      heap_.pop();  // Cancelled.
      continue;
    }
    if (top.at > until) {
      break;
    }
    heap_.pop();
    now_ = top.at;
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    cb();
    ++executed;
  }
  if (now_ < until && heap_.empty()) {
    now_ = until;
  }
  return executed;
}

}  // namespace bullet
