// Fig. 8: the Fig. 7 peer-set comparison under synthetic bandwidth changes plus
// random losses.
//
// Expected shape (paper): the dynamic approach matches and sometimes exceeds the
// best static configuration once conditions change underneath the overlay.

#include "bench/bench_util.h"

namespace bullet {
namespace {

void BM_PeerSet(benchmark::State& state) {
  const int peers = static_cast<int>(state.range(0));  // 0 = dynamic
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = bench::ScaledFileMb(100.0);
  cfg.dynamic_bw = true;
  cfg.seed = 801;
  BulletPrimeConfig bp;
  std::string name;
  if (peers == 0) {
    name = "BulletPrime dynamic peer sets";
  } else {
    bp.dynamic_peer_sets = false;
    bp.initial_senders = peers;
    bp.initial_receivers = peers;
    name = "BulletPrime " + std::to_string(peers) + " senders/receivers";
  }
  for (auto _ : state) {
    const ScenarioResult r = RunScenario(System::kBulletPrime, cfg, bp);
    bench::ReportCompletion(state, name, r);
  }
}
BENCHMARK(BM_PeerSet)->Arg(14)->Arg(0)->Arg(10)->Arg(6)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bullet

BULLET_BENCH_MAIN("Fig. 8 — peer-set size under bandwidth changes and losses")
