#include "src/sim/engine_parallel.h"

#include <chrono>

#include "src/common/logging.h"
#include "src/common/profiler.h"

namespace bullet {
namespace {

thread_local int g_exec_partition = -1;

// Spin with a yield, falling back to a short sleep once a wait stretches past
// a few thousand iterations. Windows are ~100µs-1ms of work, so the yield loop
// catches almost every barrier; the sleep keeps idle pools (and TSan builds,
// which run an order of magnitude slower) from burning cores.
void BackoffSpin(uint32_t& spins) {
  ++spins;
  if (spins < 4096) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace

int CurrentPartitionIndex() { return g_exec_partition; }

PartitionScope::PartitionScope(int index) : prev_(g_exec_partition) {
  g_exec_partition = index;
}

PartitionScope::~PartitionScope() { g_exec_partition = prev_; }

WorkerPool::WorkerPool(int num_threads, PhaseProfiler* profiler)
    : num_threads_(num_threads), profiler_(profiler) {
  BULLET_CHECK(num_threads >= 1);
  threads_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  shutdown_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPool::RunOnAll(const std::function<void(int)>& fn) {
  task_ = &fn;
  done_.store(0, std::memory_order_relaxed);
  // Release: workers observing the new epoch also observe task_ and every
  // coordinator write that preceded this call (partition queues, staged state).
  epoch_.fetch_add(1, std::memory_order_release);
  fn(0);
  {
    BULLET_PROFILE_SCOPE(ProfilePhase::kBarrierWait);
    uint32_t spins = 0;
    // Acquire: once every worker has release-incremented done_, all their
    // writes (partition events, shard deltas) are visible to the coordinator.
    while (done_.load(std::memory_order_acquire) < num_threads_ - 1) {
      BackoffSpin(spins);
    }
  }
  task_ = nullptr;
}

void WorkerPool::WorkerMain(int index) {
  PhaseProfiler* prev_profiler = nullptr;
  if (profiler_ != nullptr) {
    prev_profiler = PhaseProfiler::Swap(profiler_);
  }
  uint64_t seen_epoch = 0;
  for (;;) {
    uint32_t spins = 0;
    uint64_t e;
    {
      BULLET_PROFILE_SCOPE(ProfilePhase::kBarrierWait);
      while ((e = epoch_.load(std::memory_order_acquire)) == seen_epoch) {
        BackoffSpin(spins);
      }
    }
    seen_epoch = e;
    if (shutdown_.load(std::memory_order_relaxed)) {
      break;
    }
    (*task_)(index);
    done_.fetch_add(1, std::memory_order_release);
  }
  if (profiler_ != nullptr) {
    PhaseProfiler::Swap(prev_profiler);
  }
}

}  // namespace bullet
