// Fig. 13 + Section 4.6: block inter-arrival times and the potential benefit of
// source encoding. Runs Bullet' (unencoded) on the lossy mesh recording every block
// arrival, reports the average inter-arrival time by arrival index (the paper's
// figure), and computes the paper's comparison: cumulative overage of the last 20
// blocks' inter-arrival over the mean, versus the download-time cost of a fixed 4%
// encoding overhead.
//
// Expected shape (paper): no sharp last-block spike; overage (~8 s at paper scale)
// is comparable to the 4% encoding cost (~7.6 s), so source encoding is of no clear
// benefit in this setting.

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "src/common/stats.h"
#include "src/core/bullet_prime.h"
#include "src/harness/experiment.h"
#include "src/harness/scenario_registry.h"

namespace bullet {
namespace {

BULLET_SCENARIO(fig13_interarrival_encoding, "Fig. 13 — inter-arrival vs encoding overhead") {
  ScenarioConfig cfg;
  cfg.num_nodes = 100;
  cfg.file_mb = ScaledFileMb(100.0);
  cfg.seed = 1301;
  cfg.record_arrivals = true;
  ApplyScenarioOptions(opts, &cfg);

  // Run via the experiment layer so we can reach per-node arrival times.
  ExperimentParams params;
  params.seed = cfg.seed;
  params.file.block_bytes = cfg.block_bytes;
  params.file.num_blocks = static_cast<uint32_t>(cfg.file_mb * 1024.0 * 1024.0 /
                                                 static_cast<double>(cfg.block_bytes));
  params.deadline = cfg.deadline;
  params.record_arrivals = true;
  Experiment exp(BuildScenarioTopology(cfg), params);
  BulletPrimeConfig bp;
  RunMetrics metrics = exp.Run([&](const Protocol::Context& ctx, const ControlTree* tree) {
    return std::make_unique<BulletPrime>(ctx, params.file, params.source, tree, bp);
  });

  // Average inter-arrival time across receivers, by arrival index.
  const uint32_t n = params.file.num_blocks;
  std::vector<double> sum(n, 0.0);
  std::vector<int> count(n, 0);
  for (NodeId node = 1; node < cfg.num_nodes; ++node) {
    const auto& arrivals = metrics.node(node).block_arrivals;
    for (size_t i = 1; i < arrivals.size() && i < n; ++i) {
      sum[i] += SimToSec(arrivals[i] - arrivals[i - 1]);
      ++count[i];
    }
  }
  std::vector<double> avg_interarrival;
  for (uint32_t i = 1; i < n; ++i) {
    if (count[i] > 0) {
      avg_interarrival.push_back(sum[i] / count[i]);
    }
  }

  const double mean_gap = std::accumulate(avg_interarrival.begin(), avg_interarrival.end(), 0.0) /
                          std::max<size_t>(1, avg_interarrival.size());
  // Cumulative overage of the last 20 blocks vs the overall mean gap.
  double overage = 0.0;
  const size_t tail = std::min<size_t>(20, avg_interarrival.size());
  for (size_t i = avg_interarrival.size() - tail; i < avg_interarrival.size(); ++i) {
    overage += std::max(0.0, avg_interarrival[i] - mean_gap);
  }
  // Cost of a 4% reception overhead at the median observed download rate.
  const auto completion = metrics.CompletionSeconds(params.source);
  const double median_time = Percentile(completion, 0.5);
  const double encoding_cost = 0.04 * median_time;

  ScenarioReport report(kScenarioName);
  report.AddScalar("mean_gap_ms", mean_gap * 1e3);
  report.AddScalar("last20_overage_s", overage);
  report.AddScalar("encoding_cost_s", encoding_cost);
  report.AddScalar("encoding_wins", overage > encoding_cost ? 1 : 0);
  report.AddSeries("avg block inter-arrival (s), by arrival index", avg_interarrival);
  return report;
}

}  // namespace
}  // namespace bullet
