// Emulated topologies.
//
// Every topology gives each overlay node a dedicated inbound and outbound access
// link; what lies between the sender's uplink and the receiver's downlink is the
// topology's *interior*. A flow from s to d traverses s's uplink, the interior
// links on the s->d path, and d's downlink. Two interior models exist:
//
//  * MeshTopology — the paper's ModelNet setup (Sections 4.1-4.7): a fully
//    interconnected mesh where every ordered node pair owns a private core link
//    with independently chosen bandwidth, propagation delay and loss rate. The
//    interior path is always exactly that one core link, pairs never share
//    interior capacity, and memory is O(N^2).
//
//  * RoutedTopology — a sparse router graph (transit-stub / GT-ITM style, or an
//    explicit edge list). Overlay nodes attach to routers; the interior path is
//    the delay-shortest route between the attachment routers, so flows from
//    different pairs genuinely share links — the regime where max-min fair
//    emulation produces the paper's "correlated and cumulative" bandwidth
//    effects. Memory is O(N + routers + edges); routes are computed on demand
//    (one Dijkstra per used source router) and per-pair link-id lists are
//    cached, so the footprint scales with the pairs actually connected, not
//    with N^2.
//
// Interior link ids are topology-defined dense integers (mesh: src*N+dst; routed:
// edge index). Propagation delay and loss are fixed once routes are first used;
// link *bandwidth* is the one dynamic quantity (see dynamics.h). On a routed
// topology a bandwidth change to a shared link affects every flow routed across
// it — ScalePathBandwidth/SetPathBandwidth below define how the mesh-era
// per-pair "core link" mutations map onto shared interior links.

#ifndef SRC_SIM_TOPOLOGY_H_
#define SRC_SIM_TOPOLOGY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/sim/time.h"

namespace bullet {

using NodeId = int32_t;

struct LinkParams {
  double bandwidth_bps = 0.0;  // capacity in bits/second
  SimTime delay = 0;           // one-way propagation delay
  double loss_rate = 0.0;      // independent packet loss probability
};

class MeshTopology;
class RoutedTopology;

// Abstract base: per-node access links plus a topology-specific interior.
class Topology {
 public:
  explicit Topology(int num_nodes);
  virtual ~Topology() = default;

  int num_nodes() const { return num_nodes_; }

  LinkParams& uplink(NodeId n) {
    BULLET_CHECK(static_cast<uint32_t>(n) < static_cast<uint32_t>(num_nodes_));
    return uplinks_[static_cast<size_t>(n)];
  }
  LinkParams& downlink(NodeId n) {
    BULLET_CHECK(static_cast<uint32_t>(n) < static_cast<uint32_t>(num_nodes_));
    return downlinks_[static_cast<size_t>(n)];
  }
  const LinkParams& uplink(NodeId n) const {
    BULLET_CHECK(static_cast<uint32_t>(n) < static_cast<uint32_t>(num_nodes_));
    return uplinks_[static_cast<size_t>(n)];
  }
  const LinkParams& downlink(NodeId n) const {
    BULLET_CHECK(static_cast<uint32_t>(n) < static_cast<uint32_t>(num_nodes_));
    return downlinks_[static_cast<size_t>(n)];
  }

  // A borrowed view of the interior link ids on the s->d path, in path order.
  // Valid only until the next InteriorPath call on this topology (implementations
  // may back it with scratch or growable cache storage); copy it to keep it.
  struct PathView {
    const int32_t* ids = nullptr;
    uint32_t size = 0;
    const int32_t* begin() const { return ids; }
    const int32_t* end() const { return ids + size; }
  };

  // The interior links between src's uplink and dst's downlink. May be empty
  // (routed topologies where both nodes attach to the same router). Requires
  // src != dst.
  virtual PathView InteriorPath(NodeId src, NodeId dst) const = 0;

  // Parameters of one interior link, addressed by the ids InteriorPath returns.
  virtual const LinkParams& interior_link(int32_t link_id) const = 0;
  LinkParams& interior_link(int32_t link_id) {
    return const_cast<LinkParams&>(static_cast<const Topology*>(this)->interior_link(link_id));
  }

  // Exclusive upper bound on interior link ids (mesh: N^2; routed: edge count).
  // Sizes the network's per-epoch id-mapping tables.
  virtual int64_t interior_id_limit() const = 0;

  // One-way path delay s->d and round-trip time s->d->s: access-link delays plus
  // the interior delays along InteriorPath.
  SimTime PathDelay(NodeId src, NodeId dst) const;
  SimTime Rtt(NodeId src, NodeId dst) const;
  // End-to-end loss probability on the s->d path: independent loss composed
  // across the interior links and both access links.
  double PathLoss(NodeId src, NodeId dst) const;

  // How dynamic-bandwidth drivers mutate the s->d path (see dynamics.h). On the
  // mesh these touch exactly the private core link, reproducing the paper's
  // per-pair semantics bit for bit; on a routed topology they apply to every
  // interior link of the route, so decreases aimed at different receivers
  // compound on shared links — the sparse-graph reading of the paper's
  // "correlated and cumulative decreases from a large set of sources".
  void ScalePathBandwidth(NodeId src, NodeId dst, double factor);
  void SetPathBandwidth(NodeId src, NodeId dst, double bps);

  // Downcast helper for mesh-specific call sites (per-pair core-link fixtures in
  // tests and the Fig. 12 cascade bench); nullptr on non-mesh topologies.
  virtual MeshTopology* AsMesh() { return nullptr; }
  // Downcast helper for routed-specific call sites (stub-domain-aware churn
  // models, shared-link probes); nullptr on non-routed topologies.
  virtual RoutedTopology* AsRouted() { return nullptr; }
  virtual const RoutedTopology* AsRouted() const { return nullptr; }

 protected:
  int num_nodes_;
  std::vector<LinkParams> uplinks_;
  std::vector<LinkParams> downlinks_;
};

// The paper's ModelNet mesh: every ordered pair owns a private core link.
class MeshTopology final : public Topology {
 public:
  // Dense core-matrix indices are src*N+dst in a 32-bit id space; one node more
  // and the ids would alias (46341^2 > INT32_MAX), silently folding distinct
  // core links together. The mesh refuses to build past this; larger overlays
  // belong on RoutedTopology, whose interior id space is the (sparse) edge list.
  static constexpr int kMaxNodes = 46340;

  explicit MeshTopology(int num_nodes);

  LinkParams& core(NodeId src, NodeId dst) {
    return core_[CoreIndex(src, dst)];
  }
  const LinkParams& core(NodeId src, NodeId dst) const {
    return core_[CoreIndex(src, dst)];
  }

  PathView InteriorPath(NodeId src, NodeId dst) const override;
  const LinkParams& interior_link(int32_t link_id) const override {
    BULLET_CHECK(link_id >= 0 && static_cast<int64_t>(link_id) < interior_id_limit());
    return core_[static_cast<size_t>(link_id)];
  }
  int64_t interior_id_limit() const override {
    return static_cast<int64_t>(num_nodes_) * num_nodes_;
  }
  MeshTopology* AsMesh() override { return this; }

  // --- Builders for the paper's experimental topologies ---

  struct MeshParams {
    int num_nodes = 100;
    double access_bps = 6e6;        // 6 Mbps access links (Section 4.1)
    double core_bps = 2e6;          // 2 Mbps nominal core links
    SimTime access_delay = MsToSim(1);
    SimTime core_delay_min = MsToSim(5);
    SimTime core_delay_max = MsToSim(200);
    double core_loss_min = 0.0;     // loss chosen uniformly per core link
    double core_loss_max = 0.03;    // 0-3% (Section 4.1)
  };
  // The Section 4.1 topology: full mesh, randomized core delays and losses.
  static MeshTopology FullMesh(const MeshParams& params, Rng& rng);

  // The Section 4.4 "constrained access" topology: ample core (10 Mbps / 1 ms,
  // lossless), 800 Kbps access links.
  static MeshTopology ConstrainedAccess(int num_nodes, Rng& rng);

  // The Section 4.5 topology: uniform links of the given bandwidth/latency between
  // all pairs (modelled as ample access and uniform core), optional random core loss.
  static MeshTopology Uniform(int num_nodes, double link_bps, SimTime link_delay,
                              double loss_min, double loss_max, Rng& rng);

  // A synthetic wide-area (PlanetLab stand-in) topology for Section 4.7: per-node
  // access bandwidth 1-20 Mbps, core RTTs 10-400 ms, light random loss.
  static MeshTopology WideArea(int num_nodes, Rng& rng);

 private:
  // Validates the node count before the core matrix is sized — the ctor's
  // member initializer must not attempt a 46341^2-element allocation first.
  static size_t CheckedCoreSize(int num_nodes);

  size_t CoreIndex(NodeId src, NodeId dst) const {
    BULLET_CHECK(static_cast<uint32_t>(src) < static_cast<uint32_t>(num_nodes_));
    BULLET_CHECK(static_cast<uint32_t>(dst) < static_cast<uint32_t>(num_nodes_));
    return static_cast<size_t>(src) * static_cast<size_t>(num_nodes_) +
           static_cast<size_t>(dst);
  }

  std::vector<LinkParams> core_;
  mutable int32_t path_scratch_ = -1;  // backs the single-link InteriorPath view
};

// Sparse router graph with overlay nodes attached to routers. Interior link ids
// are directed-edge indices in AddEdge order.
class RoutedTopology final : public Topology {
 public:
  // `num_routers` interior routers, ids [0, num_routers). Every overlay node
  // must be attached to a router (AttachNode) before routes are queried.
  RoutedTopology(int num_nodes, int num_routers);

  int num_routers() const { return num_routers_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  void AttachNode(NodeId node, int32_t router);
  int32_t attach(NodeId node) const {
    BULLET_CHECK(static_cast<uint32_t>(node) < static_cast<uint32_t>(num_nodes_));
    return attach_[static_cast<size_t>(node)];
  }

  // Adds one directed router-to-router edge; returns its interior link id.
  // Must not be called after the first route query (routes are pinned then).
  int32_t AddEdge(int32_t from_router, int32_t to_router, const LinkParams& params);
  // Two directed edges with identical parameters; returns the a->b id (the b->a
  // edge is the next id).
  int32_t AddDuplexEdge(int32_t a, int32_t b, const LinkParams& params);

  PathView InteriorPath(NodeId src, NodeId dst) const override;
  const LinkParams& interior_link(int32_t link_id) const override {
    BULLET_CHECK(static_cast<uint32_t>(link_id) < edges_.size());
    return edges_[static_cast<size_t>(link_id)].params;
  }
  int64_t interior_id_limit() const override { return num_edges(); }
  RoutedTopology* AsRouted() override { return this; }
  const RoutedTopology* AsRouted() const override { return this; }

  // Endpoints of an interior edge (for tests and diagnostics).
  int32_t edge_from(int32_t link_id) const { return edges_[static_cast<size_t>(link_id)].from; }
  int32_t edge_to(int32_t link_id) const { return edges_[static_cast<size_t>(link_id)].to; }

  // Bytes held by the permanent structures (access links, attach map, edges) —
  // what a scenario pays to *build* the topology. Routing state (including the
  // lazily built adjacency CSR) is excluded: it grows with the node pairs
  // actually connected, and route_cache_bytes() reports it separately.
  size_t MemoryFootprintBytes() const;
  size_t route_cache_bytes() const;

  // --- Builders ---

  // GT-ITM-style transit-stub graph. Transit domains are rings of transit
  // routers, all domain pairs interconnected; each transit router hosts stub
  // domains (stars of stub routers) whose gateway link up to the transit router
  // is the shared bottleneck tier every node in the stub competes for. Overlay
  // nodes are spread across stub routers (rng-shuffled round robin).
  struct TransitStubParams {
    int num_nodes = 100;
    int transit_domains = 2;
    int routers_per_transit = 4;
    int stub_domains_per_transit_router = 3;
    int routers_per_stub = 4;
    double transit_bps = 155e6;      // intra- and inter-transit-domain links
    double transit_stub_bps = 45e6;  // stub gateway uplinks (shared bottleneck tier)
    double stub_bps = 100e6;         // intra-stub star links
    double access_bps = 6e6;
    SimTime access_delay = MsToSim(1);
    SimTime transit_delay_min = MsToSim(5);
    SimTime transit_delay_max = MsToSim(40);
    SimTime transit_stub_delay = MsToSim(2);
    SimTime stub_delay = MsToSim(1);
    double transit_loss_min = 0.0;  // loss drawn per transit-tier link
    double transit_loss_max = 0.0;
  };
  static RoutedTopology TransitStub(const TransitStubParams& params, Rng& rng);

  // Structural record of a TransitStub build, kept so topology-aware drivers
  // (correlated-failure churn, shared-link utilization probes) can map routers
  // and overlay nodes back onto the transit/stub hierarchy. Stub domains are
  // numbered in creation order: per transit router, then per stub slot.
  struct TransitStubInfo {
    int num_transit_routers = 0;
    int num_stub_domains = 0;
    int routers_per_stub = 0;
    int stub_domains_per_transit_router = 0;
    // Per stub domain: the interior link id of the transit->gateway direction
    // of its shared gateway uplink (the reverse direction is the next id).
    std::vector<int32_t> gateway_uplink_edge;
    // Per router: the interior link id of the gateway->member direction of its
    // intra-stub star link (member->gateway is the next id); -1 for transit
    // routers and stub gateways, which have no star link of their own. Recorded
    // so segment-compressed routing can compose stub legs without Dijkstra.
    std::vector<int32_t> member_uplink_edge;

    // The stub domain owning `router`; -1 for transit routers.
    int stub_domain_of_router(int32_t router) const {
      return router < num_transit_routers
                 ? -1
                 : static_cast<int>((router - num_transit_routers) / routers_per_stub);
    }
    int32_t gateway_router(int stub_domain) const {
      return num_transit_routers + stub_domain * routers_per_stub;
    }
    int32_t transit_router(int stub_domain) const {
      return stub_domain / stub_domains_per_transit_router;
    }
  };
  // Non-null only on topologies built by TransitStub.
  const TransitStubInfo* transit_stub_info() const {
    return transit_stub_info_.num_stub_domains > 0 ? &transit_stub_info_ : nullptr;
  }

  // --- Segment-compressed routing (mega-swarm mode) ---
  // Opt-in for TransitStub-built topologies: per-pair routes are composed
  // lazily as (src stub leg, cached transit->transit segment, dst stub leg)
  // instead of materializing one pooled edge list per router pair, so route
  // memory is O(T^2 segments + routers), not O(pairs x path length). Composed
  // views are backed by scratch (valid until the next InteriorPath call, per
  // the PathView contract) and are bitwise-equal to the uncompressed edge
  // lists: a stub star leaves through its gateway's single transit uplink, so
  // the Dijkstra tree beyond the transit router is shift-invariant in the
  // source (same (dist, router) heap order, same strict-improvement
  // relaxations), making the composed list exactly the tree walk the
  // uncompressed path cache would have stored (route_composition_test pins
  // this). Must be enabled before the first route query.
  void EnableSegmentCompression();
  bool segment_compression_enabled() const { return compress_segments_; }

  // Thread-safety: route state (adjacency CSR, per-source shortest-path trees,
  // per-pair path cache) fills lazily under const queries, so concurrent
  // InteriorPath/PathDelay calls from multiple threads race. The parallel
  // engine's contract is: PrewarmRoutes() once at startup (single-threaded),
  // then all path queries happen on the coordinator thread only — worker
  // threads never query the topology (network.h documents the matching engine
  // contract). PrewarmRoutes computes the shortest-path tree from every router
  // an overlay node attaches to, plus the adjacency CSR, so the only state
  // still mutating afterwards is the per-pair path cache. Under segment
  // compression it instead warms the (far fewer) transit-router trees and all
  // transit segments between them; the compose scratch still mutates per
  // query, coordinator-only like the path cache.
  void PrewarmRoutes() const;

  // Multi-source delay-weighted Dijkstra over the router graph: distance from
  // the nearest of `sources` to every router; -1 where unreachable. A pure
  // query apart from lazily building the adjacency CSR. The parallel engine
  // derives its conservative-sync lookahead (minimum cross-partition path
  // delay) from these distances.
  std::vector<SimTime> RouterDistancesFrom(const std::vector<int32_t>& sources) const;

 private:
  struct Edge {
    int32_t from = -1;
    int32_t to = -1;
    LinkParams params;
  };

  void BuildAdjacency() const;
  // Dijkstra (delay-weighted, deterministic (dist, router) tie-break) from
  // `src_router`, filling routes_[src_router].
  void ComputeRoutesFrom(int32_t src_router) const;
  // Compressed-mode route assembly: stub legs from the recorded build edges,
  // interior from the cached transit segment. Returns a scratch-backed view.
  PathView ComposedInteriorPath(int32_t r0, int32_t r1) const;
  // (offset, length) into segment_pool_ of the tr0->tr1 transit segment,
  // computing and caching it on first use.
  std::pair<uint32_t, uint32_t> TransitSegment(int32_t tr0, int32_t tr1) const;

  int num_routers_;
  std::vector<int32_t> attach_;  // per overlay node; -1 until AttachNode
  std::vector<Edge> edges_;
  TransitStubInfo transit_stub_info_;  // empty unless TransitStub-built

  // Lazy routing state (const-queried, cached): CSR adjacency over routers,
  // per-source shortest-path trees, and pooled per-router-pair edge lists.
  mutable bool adj_built_ = false;
  mutable std::vector<uint32_t> adj_off_;
  mutable std::vector<int32_t> adj_edge_;
  struct SourceRoutes {
    bool computed = false;
    std::vector<int32_t> prev_edge;  // edge arriving at each router; -1 at src/unreachable
  };
  mutable std::vector<SourceRoutes> routes_;
  mutable std::unordered_map<int64_t, std::pair<uint32_t, uint32_t>> path_cache_;
  mutable std::vector<int32_t> path_pool_;

  // Segment-compression state: dense T x T transit-segment cache (offset into
  // segment_pool_; kSegmentUnset until computed) plus the scratch buffer that
  // backs composed PathViews.
  static constexpr uint32_t kSegmentUnset = 0xffffffffu;
  bool compress_segments_ = false;
  mutable std::vector<uint32_t> segment_off_;
  mutable std::vector<uint32_t> segment_len_;
  mutable std::vector<int32_t> segment_pool_;
  mutable std::vector<int32_t> compose_scratch_;
};

}  // namespace bullet

#endif  // SRC_SIM_TOPOLOGY_H_
