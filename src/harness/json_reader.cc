#include "src/harness/json_reader.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace bullet {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number() : fallback;
}

std::string JsonValue::StringOr(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->str() : fallback;
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> v) {
  JsonValue out;
  out.type_ = Type::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> v) {
  JsonValue out;
  out.type_ = Type::kObject;
  out.object_ = std::move(v);
  return out;
}

namespace {

// Containers nest recursively in ParseValue; a hostile document of 100k '['s
// would otherwise recurse straight through the stack. Far deeper than any
// bench document, far shallower than any stack.
constexpr int kMaxNestingDepth = 256;

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    *error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) {
      return Fail(std::string("bad literal, expected '") + word + "'");
    }
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{': {
        if (depth_ >= kMaxNestingDepth) {
          return Fail("nesting deeper than 256 containers");
        }
        ++depth_;
        const bool ok = ParseObject(out);
        --depth_;
        return ok;
      }
      case '[': {
        if (depth_ >= kMaxNestingDepth) {
          return Fail("nesting deeper than 256 containers");
        }
        ++depth_;
        const bool ok = ParseArray(out);
        --depth_;
        return ok;
      }
      case '"': {
        std::string s;
        if (!ParseString(&s)) {
          return false;
        }
        *out = JsonValue::MakeString(std::move(s));
        return true;
      }
      case 't':
        if (!Literal("true", 4)) {
          return false;
        }
        *out = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!Literal("false", 5)) {
          return false;
        }
        *out = JsonValue::MakeBool(false);
        return true;
      case 'n':
        if (!Literal("null", 4)) {
          return false;
        }
        *out = JsonValue();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::MakeObject(std::move(members));
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key string");
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      members.emplace(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::MakeObject(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::MakeArray(std::move(items));
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      items.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::MakeArray(std::move(items));
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  // Reads 4 hex digits at pos_ (the body of a \uXXXX escape) into *code.
  bool ParseHex4(unsigned int* code) {
    if (pos_ + 4 > text_.size()) {
      return Fail("truncated \\u escape");
    }
    unsigned int v = 0;
    for (int k = 0; k < 4; ++k) {
      const char h = text_[pos_ + static_cast<size_t>(k)];
      v <<= 4;
      if (h >= '0' && h <= '9') {
        v |= static_cast<unsigned int>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        v |= static_cast<unsigned int>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        v |= static_cast<unsigned int>(h - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *code = v;
    return true;
  }

  // UTF-8-encodes a code point (surrogates already combined by the caller).
  static void AppendUtf8(std::string* s, unsigned int cp) {
    if (cp < 0x80) {
      *s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *s += static_cast<char>(0xC0 | (cp >> 6));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *s += static_cast<char>(0xE0 | (cp >> 12));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *s += static_cast<char>(0xF0 | (cp >> 18));
      *s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        *out = std::move(s);
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        s += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) {
        return Fail("truncated escape sequence");
      }
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"':
          s += '"';
          break;
        case '\\':
          s += '\\';
          break;
        case '/':
          s += '/';
          break;
        case 'b':
          s += '\b';
          break;
        case 'f':
          s += '\f';
          break;
        case 'n':
          s += '\n';
          break;
        case 'r':
          s += '\r';
          break;
        case 't':
          s += '\t';
          break;
        case 'u': {
          unsigned int code = 0;
          if (!ParseHex4(&code)) {
            return false;
          }
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("lone low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: JSON encodes astral code points as a \uXXXX
            // surrogate pair; the low half must follow immediately.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return Fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            unsigned int low = 0;
            if (!ParseHex4(&low)) {
              return false;
            }
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("high surrogate not followed by a low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(&s, code);
          break;
        }
        default:
          return Fail("unknown escape sequence");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    // JSON numbers start with a digit after the optional minus; without this,
    // strtod's looser grammar would accept e.g. "+1".
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return Fail("expected a value");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno != 0 || !std::isfinite(v)) {
      pos_ = start;
      return Fail("bad number '" + token + "'");
    }
    *out = JsonValue::MakeNumber(v);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  std::string scratch;
  Parser parser(text, error != nullptr ? error : &scratch);
  return parser.ParseDocument(out);
}

}  // namespace bullet
