// Discrete-event core. A binary heap of (time, sequence)-ordered callbacks; the
// sequence number makes execution order deterministic among same-time events.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/sim/time.h"

namespace bullet {

using EventId = uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  // Schedules `cb` at absolute simulated time `at` (clamped to now). Returns an id
  // usable with Cancel().
  EventId Schedule(SimTime at, Callback cb);
  EventId ScheduleAfter(SimTime delay, Callback cb) { return Schedule(now_ + delay, cb); }

  // Cancels a pending event. Cancelling an already-fired or unknown id is a no-op.
  void Cancel(EventId id);

  bool Empty() const;
  size_t pending() const;

  // Runs events until the queue is empty, `until` is passed, or Stop() is called.
  // Returns the number of events executed.
  uint64_t RunUntil(SimTime until);

  // Requests RunUntil to return after the current event completes.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

 private:
  struct Entry {
    SimTime at;
    uint64_t seq;
    EventId id;
    // Heap entries are ordered earliest-first; ties broken by insertion order.
    bool operator>(const Entry& o) const {
      if (at != o.at) {
        return at > o.at;
      }
      return seq > o.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace bullet

#endif  // SRC_SIM_EVENT_QUEUE_H_
