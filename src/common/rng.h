// Deterministic pseudo-random number generation for the emulator.
//
// Every simulation owns exactly one Rng seeded from its configuration, so runs are
// fully reproducible: identical seeds produce identical event orderings, topologies,
// loss draws, and protocol decisions. The generator is xoshiro256**, seeded through
// SplitMix64 as recommended by its authors.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace bullet {

// Stateless 64-bit mixing function. Useful on its own for deriving independent
// sub-seeds from a master seed plus a stream index.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference implementation
// re-expressed here). Period 2^256 - 1; passes BigCrush.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 random bits.
  uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponentially distributed value with the given mean.
  double Exponential(double mean);

  // Derive an independent child generator; `stream` distinguishes children derived
  // from the same parent state.
  Rng Fork(uint64_t stream);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Uniform sample of k elements without replacement (order randomized). If
  // k >= v.size() returns a shuffled copy of v.
  template <typename T>
  std::vector<T> Sample(const std::vector<T>& v, size_t k) {
    std::vector<T> copy = v;
    Shuffle(copy);
    if (copy.size() > k) {
      copy.resize(k);
    }
    return copy;
  }

  // Pick one element uniformly at random. Requires non-empty input.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
  }

 private:
  uint64_t s_[4];
};

}  // namespace bullet

#endif  // SRC_COMMON_RNG_H_
